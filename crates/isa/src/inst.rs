//! Decoded instructions.
//!
//! The simulators consume a *decoded trace*: every vector instruction
//! carries the vector length, stride and base address that were live in the
//! architectural VL/VS registers when it executed, exactly like the traces
//! produced by the Dixie tool in the paper.

use crate::mem::VectorAccess;
use crate::reg::{ScalarBank, ScalarReg, VectorReg};
use crate::vector::VectorLength;
use std::fmt;

/// Which side of the decoupled machine executes a scalar instruction.
///
/// `A`-register instructions perform address arithmetic and run on the
/// address processor; `S`-register instructions run on the scalar
/// processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarClass {
    /// Address arithmetic (the `A` register file / address processor).
    Address,
    /// Scalar computation (the `S` register file / scalar processor).
    Compute,
}

impl ScalarClass {
    /// The class a register belongs to, derived from its bank.
    pub fn of(reg: ScalarReg) -> ScalarClass {
        match reg.bank() {
            ScalarBank::Address => ScalarClass::Address,
            ScalarBank::Scalar => ScalarClass::Compute,
        }
    }
}

/// Vector arithmetic opcodes.
///
/// The reference architecture has two computation units: `FU2` is general
/// purpose, while `FU1` executes everything *except* multiplication,
/// division and square root (paper, Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum VectorOp {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
    And,
    Or,
    Xor,
    Shift,
    Compare,
    Merge,
    Move,
}

impl VectorOp {
    /// Whether the operation can only execute on the general-purpose unit
    /// (`FU2`).
    pub fn requires_general_unit(self) -> bool {
        matches!(self, VectorOp::Mul | VectorOp::Div | VectorOp::Sqrt)
    }
}

impl fmt::Display for VectorOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VectorOp::Add => "vadd",
            VectorOp::Sub => "vsub",
            VectorOp::Mul => "vmul",
            VectorOp::Div => "vdiv",
            VectorOp::Sqrt => "vsqrt",
            VectorOp::And => "vand",
            VectorOp::Or => "vor",
            VectorOp::Xor => "vxor",
            VectorOp::Shift => "vshf",
            VectorOp::Compare => "vcmp",
            VectorOp::Merge => "vmrg",
            VectorOp::Move => "vmov",
        };
        f.write_str(s)
    }
}

/// Reduction opcodes (vector in, scalar out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReduceOp::Sum => "vsum",
            ReduceOp::Max => "vmax",
            ReduceOp::Min => "vmin",
        };
        f.write_str(s)
    }
}

/// A source operand of a vector computation: another vector register or a
/// scalar register broadcast across the vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VOperand {
    /// A vector register source.
    Reg(VectorReg),
    /// A scalar register broadcast (in the decoupled machine this operand
    /// travels from the scalar/address processor through a data queue).
    Scalar(ScalarReg),
}

impl VOperand {
    /// The vector register, when this operand is one.
    pub fn vreg(self) -> Option<VectorReg> {
        match self {
            VOperand::Reg(v) => Some(v),
            VOperand::Scalar(_) => None,
        }
    }

    /// The scalar register, when this operand is one.
    pub fn sreg(self) -> Option<ScalarReg> {
        match self {
            VOperand::Reg(_) => None,
            VOperand::Scalar(s) => Some(s),
        }
    }
}

impl fmt::Display for VOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VOperand::Reg(v) => write!(f, "{v}"),
            VOperand::Scalar(s) => write!(f, "{s}"),
        }
    }
}

/// A decoded instruction of the modeled Convex-style ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Scalar ALU operation; completes in one cycle on its processor.
    SAlu {
        /// Destination register (its bank determines the executing
        /// processor in the decoupled machine).
        dst: ScalarReg,
        /// First source, if any.
        src1: Option<ScalarReg>,
        /// Second source, if any.
        src2: Option<ScalarReg>,
    },
    /// Scalar load through the scalar cache.
    SLoad {
        /// Destination register.
        dst: ScalarReg,
        /// Byte address accessed.
        addr: u64,
    },
    /// Scalar store.
    SStore {
        /// Source register holding the data.
        src: ScalarReg,
        /// Byte address accessed.
        addr: u64,
    },
    /// Conditional branch, closing a basic block. The simulation model
    /// assumes perfect branch prediction (paper, Section 4.1), so the
    /// outcome is carried in the trace.
    Branch {
        /// Register holding the comparison result (selects the branch
        /// queue used in the decoupled machine).
        cond: ScalarReg,
        /// Trace-recorded outcome.
        taken: bool,
    },
    /// Vector computation on `FU1`/`FU2`.
    VCompute {
        /// Opcode.
        op: VectorOp,
        /// Destination vector register.
        dst: VectorReg,
        /// First source operand.
        src1: VOperand,
        /// Second source operand, if the op is binary.
        src2: Option<VOperand>,
        /// Vector length in effect.
        vl: VectorLength,
    },
    /// Reduction producing a scalar result.
    VReduce {
        /// Opcode.
        op: ReduceOp,
        /// Destination scalar register.
        dst: ScalarReg,
        /// Source vector register.
        src: VectorReg,
        /// Vector length in effect.
        vl: VectorLength,
    },
    /// Strided vector load.
    VLoad {
        /// Destination vector register.
        dst: VectorReg,
        /// Base/stride/length of the access.
        access: VectorAccess,
    },
    /// Strided vector store.
    VStore {
        /// Source vector register.
        src: VectorReg,
        /// Base/stride/length of the access.
        access: VectorAccess,
    },
    /// Indexed load (gather). Conflicts with all queued stores during
    /// disambiguation.
    VGather {
        /// Destination vector register.
        dst: VectorReg,
        /// Register holding the index vector.
        index: VectorReg,
        /// Base address the indices offset from.
        base: u64,
        /// Vector length in effect.
        vl: VectorLength,
    },
    /// Indexed store (scatter). Conflicts with all subsequent loads during
    /// disambiguation.
    VScatter {
        /// Source vector register.
        src: VectorReg,
        /// Register holding the index vector.
        index: VectorReg,
        /// Base address the indices offset from.
        base: u64,
        /// Vector length in effect.
        vl: VectorLength,
    },
}

impl Inst {
    /// Whether this is a vector instruction (computation, reduction or
    /// memory).
    pub fn is_vector(&self) -> bool {
        !matches!(
            self,
            Inst::SAlu { .. } | Inst::SLoad { .. } | Inst::SStore { .. } | Inst::Branch { .. }
        )
    }

    /// Whether this instruction accesses memory (scalar or vector).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::SLoad { .. }
                | Inst::SStore { .. }
                | Inst::VLoad { .. }
                | Inst::VStore { .. }
                | Inst::VGather { .. }
                | Inst::VScatter { .. }
        )
    }

    /// Whether this instruction is a vector memory instruction.
    pub fn is_vector_memory(&self) -> bool {
        matches!(
            self,
            Inst::VLoad { .. } | Inst::VStore { .. } | Inst::VGather { .. } | Inst::VScatter { .. }
        )
    }

    /// The vector length of a vector instruction.
    pub fn vl(&self) -> Option<VectorLength> {
        match self {
            Inst::VCompute { vl, .. }
            | Inst::VReduce { vl, .. }
            | Inst::VGather { vl, .. }
            | Inst::VScatter { vl, .. } => Some(*vl),
            Inst::VLoad { access, .. } | Inst::VStore { access, .. } => Some(access.vl),
            _ => None,
        }
    }

    /// The number of architectural *operations* this instruction performs:
    /// `VL` for vector instructions, 1 otherwise (Table 1's
    /// instruction/operation distinction).
    pub fn operations(&self) -> u64 {
        self.vl().map_or(1, VectorLength::cycles)
    }

    /// Vector registers read by this instruction (up to two).
    pub fn vreg_reads(&self) -> [Option<VectorReg>; 2] {
        match self {
            Inst::VCompute { src1, src2, .. } => {
                [src1.vreg(), src2.as_ref().and_then(|s| s.vreg())]
            }
            Inst::VReduce { src, .. } => [Some(*src), None],
            Inst::VStore { src, .. } => [Some(*src), None],
            Inst::VGather { index, .. } => [Some(*index), None],
            Inst::VScatter { src, index, .. } => [Some(*src), Some(*index)],
            _ => [None, None],
        }
    }

    /// The vector register written by this instruction, if any.
    pub fn vreg_write(&self) -> Option<VectorReg> {
        match self {
            Inst::VCompute { dst, .. } | Inst::VLoad { dst, .. } | Inst::VGather { dst, .. } => {
                Some(*dst)
            }
            _ => None,
        }
    }

    /// Scalar registers read by this instruction (up to two).
    pub fn sreg_reads(&self) -> [Option<ScalarReg>; 2] {
        match self {
            Inst::SAlu { src1, src2, .. } => [*src1, *src2],
            Inst::SStore { src, .. } => [Some(*src), None],
            Inst::Branch { cond, .. } => [Some(*cond), None],
            Inst::VCompute { src1, src2, .. } => {
                [src1.sreg(), src2.as_ref().and_then(|s| s.sreg())]
            }
            _ => [None, None],
        }
    }

    /// The scalar register written by this instruction, if any.
    pub fn sreg_write(&self) -> Option<ScalarReg> {
        match self {
            Inst::SAlu { dst, .. } | Inst::SLoad { dst, .. } | Inst::VReduce { dst, .. } => {
                Some(*dst)
            }
            _ => None,
        }
    }

    /// The memory range accessed, for disambiguation purposes. Gathers and
    /// scatters return [`crate::MemRange::ALL`].
    pub fn mem_range(&self) -> Option<crate::MemRange> {
        match self {
            Inst::SLoad { addr, .. } | Inst::SStore { addr, .. } => Some(crate::MemRange::new(
                *addr,
                addr + crate::vector::ELEM_BYTES,
            )),
            Inst::VLoad { access, .. } | Inst::VStore { access, .. } => Some(access.range()),
            Inst::VGather { .. } | Inst::VScatter { .. } => Some(crate::MemRange::ALL),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::SAlu { dst, src1, src2 } => {
                write!(f, "alu {dst}")?;
                if let Some(s) = src1 {
                    write!(f, ", {s}")?;
                }
                if let Some(s) = src2 {
                    write!(f, ", {s}")?;
                }
                Ok(())
            }
            Inst::SLoad { dst, addr } => write!(f, "ld {dst}, {addr:#x}"),
            Inst::SStore { src, addr } => write!(f, "st {src}, {addr:#x}"),
            Inst::Branch { cond, taken } => {
                write!(f, "br {cond} ({})", if *taken { "taken" } else { "fall" })
            }
            Inst::VCompute {
                op,
                dst,
                src1,
                src2,
                vl,
            } => {
                write!(f, "{op} {dst}, {src1}")?;
                if let Some(s) = src2 {
                    write!(f, ", {s}")?;
                }
                write!(f, " (vl={vl})")
            }
            Inst::VReduce { op, dst, src, vl } => write!(f, "{op} {dst}, {src} (vl={vl})"),
            Inst::VLoad { dst, access } => write!(f, "vld {dst}, {access}"),
            Inst::VStore { src, access } => write!(f, "vst {src}, {access}"),
            Inst::VGather {
                dst, index, base, ..
            } => write!(f, "vgather {dst}, ({base:#x})[{index}]"),
            Inst::VScatter {
                src, index, base, ..
            } => write!(f, "vscatter {src}, ({base:#x})[{index}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemRange, Stride};

    fn vl(n: u32) -> VectorLength {
        VectorLength::new(n).unwrap()
    }

    #[test]
    fn operations_count_vl_for_vector_instructions() {
        let inst = Inst::VCompute {
            op: VectorOp::Add,
            dst: VectorReg::V0,
            src1: VOperand::Reg(VectorReg::V1),
            src2: Some(VOperand::Reg(VectorReg::V2)),
            vl: vl(100),
        };
        assert_eq!(inst.operations(), 100);
        let scalar = Inst::SAlu {
            dst: ScalarReg::scalar(0),
            src1: None,
            src2: None,
        };
        assert_eq!(scalar.operations(), 1);
    }

    #[test]
    fn fu2_only_ops_are_mul_div_sqrt() {
        assert!(VectorOp::Mul.requires_general_unit());
        assert!(VectorOp::Div.requires_general_unit());
        assert!(VectorOp::Sqrt.requires_general_unit());
        assert!(!VectorOp::Add.requires_general_unit());
        assert!(!VectorOp::Compare.requires_general_unit());
    }

    #[test]
    fn register_read_write_sets_are_consistent() {
        let inst = Inst::VCompute {
            op: VectorOp::Mul,
            dst: VectorReg::V4,
            src1: VOperand::Reg(VectorReg::V1),
            src2: Some(VOperand::Scalar(ScalarReg::scalar(2))),
            vl: vl(8),
        };
        assert_eq!(inst.vreg_reads(), [Some(VectorReg::V1), None]);
        assert_eq!(inst.vreg_write(), Some(VectorReg::V4));
        assert_eq!(inst.sreg_reads()[0], None);
        assert_eq!(inst.sreg_reads()[1], Some(ScalarReg::scalar(2)));
    }

    #[test]
    fn gather_range_is_all_memory() {
        let inst = Inst::VGather {
            dst: VectorReg::V0,
            index: VectorReg::V1,
            base: 0x1000,
            vl: vl(4),
        };
        assert_eq!(inst.mem_range(), Some(MemRange::ALL));
    }

    #[test]
    fn scalar_load_range_is_one_word() {
        let inst = Inst::SLoad {
            dst: ScalarReg::addr(0),
            addr: 0x500,
        };
        let r = inst.mem_range().unwrap();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn vector_store_reads_its_source() {
        let inst = Inst::VStore {
            src: VectorReg::V6,
            access: VectorAccess::new(0x0, Stride::UNIT, vl(2)),
        };
        assert!(inst.is_vector());
        assert!(inst.is_memory());
        assert!(inst.is_vector_memory());
        assert_eq!(inst.vreg_reads()[0], Some(VectorReg::V6));
        assert_eq!(inst.vreg_write(), None);
    }

    #[test]
    fn display_is_never_empty() {
        let insts = [
            Inst::SAlu {
                dst: ScalarReg::addr(0),
                src1: Some(ScalarReg::addr(1)),
                src2: None,
            },
            Inst::Branch {
                cond: ScalarReg::scalar(0),
                taken: true,
            },
            Inst::VLoad {
                dst: VectorReg::V0,
                access: VectorAccess::unit(0, vl(1)),
            },
        ];
        for inst in insts {
            assert!(!inst.to_string().is_empty());
        }
    }
}
