//! Program/trace containers.

use crate::inst::Inst;
use std::fmt;
use std::sync::Arc;

/// A decoded dynamic instruction trace, as produced by the workload
/// generator (the stand-in for the paper's Dixie traces).
///
/// Basic-block boundaries are recorded so that block counts (Table 1) can
/// be reproduced; [`Inst::Branch`] instructions always terminate a block.
///
/// The instruction stream is reference-counted: cloning a `Program` (or
/// deriving one with [`Program::with_name`]) shares the trace instead of
/// copying it, so sweep sessions and compiled-program caches can hand the
/// same multi-thousand-instruction trace to many simulations for free.
///
/// # Examples
///
/// ```
/// use dva_isa::{Inst, ProgramBuilder, ScalarReg};
///
/// let mut b = ProgramBuilder::new("tiny");
/// b.push(Inst::SAlu { dst: ScalarReg::scalar(0), src1: None, src2: None });
/// b.end_block();
/// let program = b.finish();
/// assert_eq!(program.basic_blocks(), 1);
///
/// // Cheap share-not-copy derivation:
/// let alias = program.with_name("tiny-alias");
/// assert_eq!(alias.insts().as_ptr(), program.insts().as_ptr());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: Arc<str>,
    insts: Arc<[Inst]>,
    /// Indices into `insts` where each basic block begins.
    block_starts: Arc<[usize]>,
}

impl Program {
    /// Builds a program from a flat instruction list, deriving basic-block
    /// boundaries from branch instructions.
    pub fn from_insts(name: impl Into<String>, insts: Vec<Inst>) -> Program {
        let mut builder = ProgramBuilder::new(name);
        for inst in insts {
            builder.push(inst);
        }
        builder.finish()
    }

    /// The workload name (e.g. `"ARC2D"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This trace under a different name, sharing the instruction stream
    /// (no instructions are copied — both programs point at the same
    /// reference-counted storage).
    #[must_use]
    pub fn with_name(&self, name: impl Into<String>) -> Program {
        Program {
            name: Arc::from(name.into()),
            insts: Arc::clone(&self.insts),
            block_starts: Arc::clone(&self.block_starts),
        }
    }

    /// The dynamic instruction stream.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of basic blocks executed.
    pub fn basic_blocks(&self) -> usize {
        self.block_starts.len()
    }

    /// Iterates over the instruction index ranges of each basic block.
    pub fn blocks(&self) -> BasicBlockIter<'_> {
        BasicBlockIter {
            program: self,
            next: 0,
        }
    }

    /// Summary counts over the trace (the raw material for Table 1).
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary {
            name: self.name.to_string(),
            basic_blocks: self.basic_blocks() as u64,
            ..TraceSummary::default()
        };
        for inst in self.insts() {
            if inst.is_vector() {
                s.vector_insts += 1;
                s.vector_ops += inst.operations();
            } else {
                s.scalar_insts += 1;
            }
            if inst.is_memory() {
                if inst.is_vector() {
                    s.vector_mem_insts += 1;
                    s.vector_mem_ops += inst.operations();
                } else {
                    s.scalar_mem_insts += 1;
                }
            }
        }
        s
    }
}

/// Iterator over basic blocks as index ranges into [`Program::insts`].
#[derive(Debug)]
pub struct BasicBlockIter<'a> {
    program: &'a Program,
    next: usize,
}

impl<'a> Iterator for BasicBlockIter<'a> {
    type Item = &'a [Inst];

    fn next(&mut self) -> Option<Self::Item> {
        let starts = &self.program.block_starts;
        if self.next >= starts.len() {
            return None;
        }
        let start = starts[self.next];
        let end = starts
            .get(self.next + 1)
            .copied()
            .unwrap_or(self.program.insts.len());
        self.next += 1;
        Some(&self.program.insts[start..end])
    }
}

/// Incremental builder for [`Program`] traces.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    block_starts: Vec<usize>,
    block_open: bool,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            block_starts: Vec::new(),
            block_open: false,
        }
    }

    /// Appends one instruction. Branches implicitly close the current basic
    /// block.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        if !self.block_open {
            self.block_starts.push(self.insts.len());
            self.block_open = true;
        }
        let is_branch = matches!(inst, Inst::Branch { .. });
        self.insts.push(inst);
        if is_branch {
            self.block_open = false;
        }
        self
    }

    /// Appends several instructions.
    pub fn extend(&mut self, insts: impl IntoIterator<Item = Inst>) -> &mut Self {
        for inst in insts {
            self.push(inst);
        }
        self
    }

    /// Explicitly ends the current basic block (e.g. a fall-through edge).
    pub fn end_block(&mut self) -> &mut Self {
        self.block_open = false;
        self
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finishes the trace.
    pub fn finish(self) -> Program {
        Program {
            name: Arc::from(self.name),
            insts: Arc::from(self.insts),
            block_starts: Arc::from(self.block_starts),
        }
    }
}

/// Raw counts over a trace: the per-program quantities reported in Table 1
/// of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Workload name.
    pub name: String,
    /// Basic blocks executed.
    pub basic_blocks: u64,
    /// Scalar instructions issued.
    pub scalar_insts: u64,
    /// Vector instructions issued.
    pub vector_insts: u64,
    /// Operations performed by vector instructions (sum of VL).
    pub vector_ops: u64,
    /// Vector memory instructions.
    pub vector_mem_insts: u64,
    /// Operations performed by vector memory instructions.
    pub vector_mem_ops: u64,
    /// Scalar memory instructions.
    pub scalar_mem_insts: u64,
}

impl TraceSummary {
    /// Degree of vectorization: vector operations over total operations
    /// (paper, Section 2.2).
    pub fn vectorization(&self) -> f64 {
        let total = (self.scalar_insts + self.vector_ops) as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.vector_ops as f64 / total
        }
    }

    /// Average vector length: vector operations per vector instruction.
    pub fn avg_vector_length(&self) -> f64 {
        if self.vector_insts == 0 {
            0.0
        } else {
            self.vector_ops as f64 / self.vector_insts as f64
        }
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} bbs, {} scalar, {} vector insts, {} vector ops, {:.1}% vect, VL {:.1}",
            self.name,
            self.basic_blocks,
            self.scalar_insts,
            self.vector_insts,
            self.vector_ops,
            self.vectorization(),
            self.avg_vector_length()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScalarReg, VectorAccess, VectorLength, VectorReg};

    fn salu() -> Inst {
        Inst::SAlu {
            dst: ScalarReg::scalar(0),
            src1: None,
            src2: None,
        }
    }

    fn branch(taken: bool) -> Inst {
        Inst::Branch {
            cond: ScalarReg::scalar(0),
            taken,
        }
    }

    fn vload(vl: u32) -> Inst {
        Inst::VLoad {
            dst: VectorReg::V0,
            access: VectorAccess::unit(0x1000, VectorLength::new(vl).unwrap()),
        }
    }

    #[test]
    fn branches_delimit_basic_blocks() {
        let program = Program::from_insts(
            "bb",
            vec![salu(), branch(true), salu(), salu(), branch(false), salu()],
        );
        assert_eq!(program.basic_blocks(), 3);
        let sizes: Vec<usize> = program.blocks().map(<[Inst]>::len).collect();
        assert_eq!(sizes, vec![2, 3, 1]);
    }

    #[test]
    fn summary_separates_instructions_from_operations() {
        let program = Program::from_insts("sum", vec![salu(), vload(100), vload(28), branch(true)]);
        let s = program.summary();
        assert_eq!(s.scalar_insts, 2);
        assert_eq!(s.vector_insts, 2);
        assert_eq!(s.vector_ops, 128);
        assert_eq!(s.vector_mem_insts, 2);
        assert!((s.avg_vector_length() - 64.0).abs() < 1e-9);
        // 128 vector ops out of 130 total operations.
        assert!((s.vectorization() - 100.0 * 128.0 / 130.0).abs() < 1e-9);
    }

    #[test]
    fn empty_program_summary_is_zeroed() {
        let program = Program::from_insts("empty", vec![]);
        let s = program.summary();
        assert_eq!(s.vectorization(), 0.0);
        assert_eq!(s.avg_vector_length(), 0.0);
        assert!(program.is_empty());
    }

    #[test]
    fn with_name_shares_the_instruction_storage() {
        let program = Program::from_insts("orig", vec![salu(), branch(true), vload(8)]);
        let alias = program.with_name("alias");
        assert_eq!(alias.name(), "alias");
        assert_eq!(alias.insts(), program.insts());
        assert_eq!(alias.basic_blocks(), program.basic_blocks());
        // Shared, not copied: both views point at the same storage, as do
        // plain clones.
        assert_eq!(alias.insts().as_ptr(), program.insts().as_ptr());
        assert_eq!(program.clone().insts().as_ptr(), program.insts().as_ptr());
    }

    #[test]
    fn builder_end_block_splits_without_branch() {
        let mut b = ProgramBuilder::new("split");
        b.push(salu());
        b.end_block();
        b.push(salu());
        let program = b.finish();
        assert_eq!(program.basic_blocks(), 2);
    }
}
