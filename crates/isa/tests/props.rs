//! Property-based tests for the ISA primitives.

use dva_isa::{MemRange, Stride, VectorAccess, VectorLength, ELEM_BYTES};
use proptest::prelude::*;

fn arb_vl() -> impl Strategy<Value = VectorLength> {
    (1u32..=128).prop_map(|n| VectorLength::new(n).unwrap())
}

fn arb_access() -> impl Strategy<Value = VectorAccess> {
    (0u64..1 << 40, -64i64..=64, arb_vl())
        .prop_map(|(base, stride, vl)| VectorAccess::new(base, Stride::new(stride), vl))
}

proptest! {
    /// Every element touched by an access lies within its reported range.
    #[test]
    fn range_covers_all_elements(acc in arb_access()) {
        let range = acc.range();
        for i in 0..acc.vl.get() as i64 {
            let addr = acc.base as i64 + i * acc.stride.bytes();
            if addr < 0 { continue; } // saturated below zero; range start is 0 then
            let elem = MemRange::new(addr as u64, addr as u64 + ELEM_BYTES);
            prop_assert!(
                range.contains(&elem) || range.end() == u64::MAX,
                "element {i} at {addr:#x} outside {range}"
            );
        }
    }

    /// Range length is consistent with |stride| and VL for positive bases
    /// away from the saturation boundaries.
    #[test]
    fn range_length_formula(base in (1u64 << 30)..(1u64 << 40),
                            stride in -64i64..=64,
                            vl in arb_vl()) {
        let acc = VectorAccess::new(base, Stride::new(stride), vl);
        let expected = (vl.get() as u64 - 1) * stride.unsigned_abs() * ELEM_BYTES + ELEM_BYTES;
        prop_assert_eq!(acc.range().len(), expected);
    }

    /// Overlap is symmetric.
    #[test]
    fn overlap_is_symmetric(a in arb_access(), b in arb_access()) {
        prop_assert_eq!(a.range().overlaps(&b.range()), b.range().overlaps(&a.range()));
    }

    /// An access always overlaps itself and is identical to itself.
    #[test]
    fn access_overlaps_itself(a in arb_access()) {
        prop_assert!(a.range().overlaps(&a.range()));
        prop_assert!(a.is_identical(&a));
    }

    /// Identical accesses have identical ranges (the bypass precondition is
    /// strictly stronger than range equality).
    #[test]
    fn identical_implies_equal_ranges(a in arb_access()) {
        let b = VectorAccess::new(a.base, a.stride, a.vl);
        prop_assert!(a.is_identical(&b));
        prop_assert_eq!(a.range(), b.range());
    }

    /// Vector length cycles equal the element count.
    #[test]
    fn vl_cycles_match_count(vl in arb_vl()) {
        prop_assert_eq!(vl.cycles(), u64::from(vl.get()));
    }
}
