//! Scalar-cache access statistics, split by access kind.

use std::fmt;

/// Hit/miss counters of the scalar cache, kept separately for loads and
/// stores so experiments can report both hit rates (the store outcome
/// used to be discarded at the memory-system boundary).
///
/// # Examples
///
/// ```
/// use dva_metrics::CacheStats;
/// let stats = CacheStats {
///     load_hits: 6,
///     load_misses: 2,
///     store_hits: 1,
///     store_misses: 1,
/// };
/// assert_eq!(stats.hits(), 7);
/// assert!((stats.hit_rate() - 0.7).abs() < 1e-12);
/// assert!((stats.load_hit_rate() - 0.75).abs() < 1e-12);
/// assert!((stats.store_hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Scalar loads that hit in the cache.
    pub load_hits: u64,
    /// Scalar loads that missed.
    pub load_misses: u64,
    /// Scalar stores whose line was present (write-through: the store
    /// still generates memory traffic either way).
    pub store_hits: u64,
    /// Scalar stores whose line was absent.
    pub store_misses: u64,
}

impl CacheStats {
    /// Total hits, loads and stores combined.
    pub fn hits(&self) -> u64 {
        self.load_hits + self.store_hits
    }

    /// Total misses, loads and stores combined.
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    /// Hit rate over all accesses (0..=1), 0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        rate(self.hits(), self.misses())
    }

    /// Hit rate over loads only (0..=1), 0 when no loads happened.
    pub fn load_hit_rate(&self) -> f64 {
        rate(self.load_hits, self.load_misses)
    }

    /// Hit rate over stores only (0..=1), 0 when no stores happened.
    pub fn store_hit_rate(&self) -> f64 {
        rate(self.store_hits, self.store_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loads {:.1}% ({}/{}), stores {:.1}% ({}/{})",
            100.0 * self.load_hit_rate(),
            self.load_hits,
            self.load_hits + self.load_misses,
            100.0 * self.store_hit_rate(),
            self.store_hits,
            self.store_hits + self.store_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zero_rates() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.load_hit_rate(), 0.0);
        assert_eq!(stats.store_hit_rate(), 0.0);
    }

    #[test]
    fn combined_rate_mixes_loads_and_stores() {
        let stats = CacheStats {
            load_hits: 3,
            load_misses: 1,
            store_hits: 0,
            store_misses: 4,
        };
        assert!((stats.hit_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert!((stats.load_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.store_hit_rate(), 0.0);
    }

    #[test]
    fn display_names_both_rates() {
        let stats = CacheStats {
            load_hits: 1,
            load_misses: 1,
            store_hits: 2,
            store_misses: 0,
        };
        let text = format!("{stats}");
        assert!(text.contains("loads 50.0% (1/2)"));
        assert!(text.contains("stores 100.0% (2/2)"));
    }
}
