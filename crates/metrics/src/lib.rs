//! Cycle accounting and reporting for the *Decoupled Vector Architectures*
//! reproduction.
//!
//! The paper analyzes executions through three lenses, all implemented
//! here:
//!
//! * the **8-state functional-unit occupancy breakdown** of Figure 1
//!   ([`StateTracker`], [`UnitState`]),
//! * **queue occupancy histograms** like the AVDQ busy-slot plots of
//!   Figure 6 ([`Histogram`]),
//! * **memory traffic counters** for the bypass study of Figure 8
//!   ([`Traffic`]), plus scalar-cache hit/miss counters split by access
//!   kind ([`CacheStats`]).
//!
//! [`Table`] renders aligned ASCII / CSV tables so every experiment binary
//! can print the same rows the paper reports.
//!
//! # Examples
//!
//! ```
//! use dva_metrics::{StateTracker, UnitState};
//!
//! let mut t = StateTracker::new();
//! t.tick(UnitState::empty());
//! t.tick(UnitState::FU2 | UnitState::LD);
//! assert_eq!(t.idle_cycles(), 1);
//! assert_eq!(t.total_cycles(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache_stats;
mod diag;
mod hist;
mod serial;
mod states;
mod table;
mod traffic;

pub use cache_stats::CacheStats;
pub use diag::Diag;
pub use hist::Histogram;
pub use states::{StateTracker, UnitState};
pub use table::{Align, Table};
pub use traffic::Traffic;

/// Computes `reference_cycles / improved_cycles` as a speedup, returning 0
/// when the denominator is zero.
pub fn speedup(reference_cycles: u64, improved_cycles: u64) -> f64 {
    if improved_cycles == 0 {
        0.0
    } else {
        reference_cycles as f64 / improved_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_handles_zero_denominator() {
        assert_eq!(speedup(100, 0), 0.0);
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
    }
}
