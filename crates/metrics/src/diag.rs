//! Diagnostic values excluded from result identity.

use std::fmt;

/// A measurement that describes *how* a simulation ran rather than *what*
/// it computed — e.g. how many engine ticks were actually executed under
/// fast-forward.
///
/// Results of the simulators are compared byte-for-byte across execution
/// strategies (fast-forward vs naive stepping, parallel vs sequential
/// sweeps), and such diagnostics legitimately differ between strategies.
/// `Diag` therefore compares equal to every other `Diag` and renders as
/// `_` in `Debug` output, so carrying a diagnostic never breaks the
/// byte-identity contract. Read the wrapped value with [`Diag::get`] or
/// through the public `.0` field.
///
/// # Examples
///
/// ```
/// use dva_metrics::Diag;
///
/// assert_eq!(Diag(3u64), Diag(7u64)); // diagnostics never affect equality
/// assert_eq!(format!("{:?}", Diag(3u64)), "_");
/// assert_eq!(Diag(3u64).get(), 3);
/// ```
#[derive(Clone, Copy, Default)]
pub struct Diag<T>(pub T);

impl<T: Copy> Diag<T> {
    /// The wrapped diagnostic value.
    pub fn get(self) -> T {
        self.0
    }
}

impl<T> PartialEq for Diag<T> {
    fn eq(&self, _other: &Diag<T>) -> bool {
        true
    }
}

impl<T> Eq for Diag<T> {}

impl<T> fmt::Debug for Diag<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_are_invisible_to_comparisons_and_debug() {
        #[derive(Debug, PartialEq)]
        struct R {
            cycles: u64,
            ticks: Diag<u64>,
        }
        let fast = R {
            cycles: 10,
            ticks: Diag(3),
        };
        let naive = R {
            cycles: 10,
            ticks: Diag(10),
        };
        assert_eq!(fast, naive);
        assert_eq!(format!("{fast:?}"), format!("{naive:?}"));
        assert_eq!(fast.ticks.get(), 3);
    }
}
