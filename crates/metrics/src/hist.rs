//! Occupancy histograms (Figure 6 of the paper).

use std::fmt;

/// A histogram over small non-negative integer values, used to record how
/// many cycles a queue spent at each occupancy level.
///
/// Values above the configured capacity are clamped into the last bucket
/// and also tracked separately via [`Histogram::overflow`].
///
/// # Examples
///
/// ```
/// use dva_metrics::Histogram;
/// let mut h = Histogram::new(9);
/// h.tick(0);
/// h.add(2, 10);
/// assert_eq!(h.count(2), 10);
/// assert_eq!(h.max_observed(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with buckets for values `0..=max_value`.
    ///
    /// # Panics
    ///
    /// Panics if `max_value` is so large that allocating would be absurd
    /// (> 1<<20); queue occupancies in this workspace are small.
    pub fn new(max_value: usize) -> Histogram {
        assert!(max_value < (1 << 20), "histogram too large");
        Histogram {
            buckets: vec![0; max_value + 1],
            overflow: 0,
        }
    }

    /// Rebuilds a histogram from its raw parts (the inverse of
    /// [`buckets`](Self::buckets)/[`overflow`](Self::overflow), used by
    /// the JSON round-trip).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or absurdly large (the same bound as
    /// [`Histogram::new`]).
    pub fn from_parts(buckets: Vec<u64>, overflow: u64) -> Histogram {
        assert!(!buckets.is_empty(), "histogram needs at least one bucket");
        assert!(buckets.len() <= (1 << 20), "histogram too large");
        Histogram { buckets, overflow }
    }

    /// Records one observation of `value`.
    pub fn tick(&mut self, value: usize) {
        self.add(value, 1);
    }

    /// Records `count` observations of `value`.
    #[inline]
    pub fn add(&mut self, value: usize, count: u64) {
        if value >= self.buckets.len() {
            self.overflow += count;
            let last = self.buckets.len() - 1;
            self.buckets[last] += count;
        } else {
            self.buckets[value] += count;
        }
    }

    /// Number of observations of exactly `value` (clamped values land in
    /// the last bucket).
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// The bucket values, index = observed value.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations that exceeded the configured maximum.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The largest value with at least one observation, or `None` when the
    /// histogram is empty.
    pub fn max_observed(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of observations at or below `value`.
    pub fn cumulative_fraction(&self, value: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self.buckets.iter().take(value + 1).sum();
        below as f64 / total as f64
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram shape mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.max_observed().unwrap_or(0);
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for v in 0..=max {
            let bar_len = (self.count(v) * 40 / peak) as usize;
            writeln!(f, "{v:>3} | {:<40} {}", "#".repeat(bar_len), self.count(v))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_value() {
        let mut h = Histogram::new(4);
        h.tick(0);
        h.tick(0);
        h.add(3, 5);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(3), 5);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn overflow_clamps_into_last_bucket() {
        let mut h = Histogram::new(2);
        h.add(7, 3);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.count(2), 3);
        assert_eq!(h.max_observed(), Some(2));
    }

    #[test]
    fn mean_and_cumulative_are_consistent() {
        let mut h = Histogram::new(10);
        h.add(2, 2);
        h.add(4, 2);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(2) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_fraction(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_max() {
        let h = Histogram::new(4);
        assert_eq!(h.max_observed(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::new(3);
        a.add(1, 1);
        let mut b = Histogram::new(3);
        b.add(1, 2);
        b.add(3, 1);
        a.merge(&b);
        assert_eq!(a.count(1), 3);
        assert_eq!(a.count(3), 1);
    }
}
