//! Stable JSON forms of the metric types.
//!
//! These impls define the *wire and disk format* of every measurement —
//! the sweep service's result cache and protocol are built on them, so
//! the field names are a compatibility surface. The golden-format test
//! in `dva-sim-api` pins the rendered bytes; changing a field here must
//! go together with a bump of `dva_engine::ENGINE_VERSION`.

use crate::{CacheStats, Histogram, StateTracker, Traffic};
use dva_json::{FromJson, Json, JsonError, ToJson};

fn u64_array(json: &Json) -> Result<Vec<u64>, JsonError> {
    json.as_array()?.iter().map(Json::as_u64).collect()
}

impl ToJson for StateTracker {
    /// The eight per-state cycle counts, in [`crate::UnitState::index`]
    /// order.
    fn to_json(&self) -> Json {
        Json::Array(self.counts().iter().map(|&c| Json::from(c)).collect())
    }
}

impl FromJson for StateTracker {
    fn from_json(json: &Json) -> Result<StateTracker, JsonError> {
        let counts = u64_array(json)?;
        let counts: [u64; 8] = counts
            .try_into()
            .map_err(|_| JsonError::msg("state tracker needs exactly 8 counts"))?;
        Ok(StateTracker::from_counts(counts))
    }
}

impl ToJson for Traffic {
    fn to_json(&self) -> Json {
        Json::obj([
            ("vector_load_elems", Json::from(self.vector_load_elems)),
            ("vector_store_elems", Json::from(self.vector_store_elems)),
            ("scalar_load_words", Json::from(self.scalar_load_words)),
            ("scalar_store_words", Json::from(self.scalar_store_words)),
            ("bypassed_elems", Json::from(self.bypassed_elems)),
            ("bypassed_loads", Json::from(self.bypassed_loads)),
        ])
    }
}

impl FromJson for Traffic {
    fn from_json(json: &Json) -> Result<Traffic, JsonError> {
        Ok(Traffic {
            vector_load_elems: json.field("vector_load_elems")?.as_u64()?,
            vector_store_elems: json.field("vector_store_elems")?.as_u64()?,
            scalar_load_words: json.field("scalar_load_words")?.as_u64()?,
            scalar_store_words: json.field("scalar_store_words")?.as_u64()?,
            bypassed_elems: json.field("bypassed_elems")?.as_u64()?,
            bypassed_loads: json.field("bypassed_loads")?.as_u64()?,
        })
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("load_hits", Json::from(self.load_hits)),
            ("load_misses", Json::from(self.load_misses)),
            ("store_hits", Json::from(self.store_hits)),
            ("store_misses", Json::from(self.store_misses)),
        ])
    }
}

impl FromJson for CacheStats {
    fn from_json(json: &Json) -> Result<CacheStats, JsonError> {
        Ok(CacheStats {
            load_hits: json.field("load_hits")?.as_u64()?,
            load_misses: json.field("load_misses")?.as_u64()?,
            store_hits: json.field("store_hits")?.as_u64()?,
            store_misses: json.field("store_misses")?.as_u64()?,
        })
    }
}

impl ToJson for Histogram {
    /// Buckets plus the overflow count; the bucket vector's length is the
    /// configured capacity, so the shape round-trips exactly.
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "buckets",
                Json::Array(self.buckets().iter().map(|&c| Json::from(c)).collect()),
            ),
            ("overflow", Json::from(self.overflow())),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(json: &Json) -> Result<Histogram, JsonError> {
        let buckets = u64_array(json.field("buckets")?)?;
        if buckets.is_empty() {
            return Err(JsonError::msg("histogram needs at least one bucket"));
        }
        Ok(Histogram::from_parts(
            buckets,
            json.field("overflow")?.as_u64()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitState;

    #[test]
    fn state_tracker_round_trips() {
        let mut t = StateTracker::new();
        t.add(UnitState::FU2 | UnitState::LD, 7);
        t.add(UnitState::empty(), 3);
        let back = StateTracker::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json().render(), t.to_json().render());
    }

    #[test]
    fn traffic_and_cache_round_trip() {
        let traffic = Traffic {
            vector_load_elems: 1,
            vector_store_elems: 2,
            scalar_load_words: 3,
            scalar_store_words: 4,
            bypassed_elems: 5,
            bypassed_loads: 6,
        };
        assert_eq!(Traffic::from_json(&traffic.to_json()).unwrap(), traffic);
        let cache = CacheStats {
            load_hits: 9,
            load_misses: 1,
            store_hits: 0,
            store_misses: 2,
        };
        assert_eq!(CacheStats::from_json(&cache.to_json()).unwrap(), cache);
    }

    #[test]
    fn histogram_round_trips_shape_and_overflow() {
        let mut h = Histogram::new(4);
        h.add(2, 10);
        h.add(9, 3); // clamps into the last bucket, counts as overflow
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.buckets().len(), 5);
        assert_eq!(back.overflow(), 3);
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        assert!(StateTracker::from_json(&Json::Array(vec![Json::Int(1)])).is_err());
        assert!(Histogram::from_json(&Json::obj([
            ("buckets", Json::Array(vec![])),
            ("overflow", Json::Int(0)),
        ]))
        .is_err());
        assert!(Traffic::from_json(&Json::obj([("nope", Json::Null)])).is_err());
    }
}
