//! Memory traffic accounting (Figure 8 of the paper).

use dva_isa::ELEM_BYTES;
use std::fmt;
use std::ops::AddAssign;

/// Counters of 64-bit words moved between the processor and main memory.
///
/// Bypassed loads are counted separately: a bypass satisfies a load from
/// the store queue without touching memory, which is exactly the traffic
/// reduction Figure 8 quantifies.
///
/// # Examples
///
/// ```
/// use dva_metrics::Traffic;
/// let mut t = Traffic::default();
/// t.vector_load_elems += 128;
/// t.bypassed_elems += 64;
/// assert_eq!(t.memory_elems(), 128);
/// assert_eq!(t.total_request_elems(), 192);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Elements brought in by vector loads that accessed memory.
    pub vector_load_elems: u64,
    /// Elements written out by vector stores.
    pub vector_store_elems: u64,
    /// Scalar loads that reached main memory (cache misses).
    pub scalar_load_words: u64,
    /// Scalar stores.
    pub scalar_store_words: u64,
    /// Elements satisfied by the store-queue→load-queue bypass, which never
    /// reached main memory.
    pub bypassed_elems: u64,
    /// Number of vector loads fully satisfied by bypass.
    pub bypassed_loads: u64,
}

impl Traffic {
    /// Words that actually crossed the memory interface.
    pub fn memory_elems(&self) -> u64 {
        self.vector_load_elems
            + self.vector_store_elems
            + self.scalar_load_words
            + self.scalar_store_words
    }

    /// Words requested by the program, whether served by memory or bypass.
    pub fn total_request_elems(&self) -> u64 {
        self.memory_elems() + self.bypassed_elems
    }

    /// Bytes that crossed the memory interface.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_elems() * ELEM_BYTES
    }

    /// Traffic ratio of this run relative to `baseline` (paper Figure 8
    /// compares BYP against DVA): 1.0 means identical traffic, 0.7 means a
    /// 30% reduction.
    pub fn ratio_to(&self, baseline: &Traffic) -> f64 {
        let base = baseline.memory_elems();
        if base == 0 {
            0.0
        } else {
            self.memory_elems() as f64 / base as f64
        }
    }
}

impl AddAssign for Traffic {
    fn add_assign(&mut self, rhs: Traffic) {
        self.vector_load_elems += rhs.vector_load_elems;
        self.vector_store_elems += rhs.vector_store_elems;
        self.scalar_load_words += rhs.scalar_load_words;
        self.scalar_store_words += rhs.scalar_store_words;
        self.bypassed_elems += rhs.bypassed_elems;
        self.bypassed_loads += rhs.bypassed_loads;
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mem {} words (vld {}, vst {}, sld {}, sst {}), bypassed {}",
            self.memory_elems(),
            self.vector_load_elems,
            self.vector_store_elems,
            self.scalar_load_words,
            self.scalar_store_words,
            self.bypassed_elems
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_reduces_memory_but_not_requests() {
        let with_bypass = Traffic {
            vector_load_elems: 70,
            bypassed_elems: 30,
            ..Traffic::default()
        };
        let without = Traffic {
            vector_load_elems: 100,
            ..Traffic::default()
        };
        assert_eq!(with_bypass.memory_elems(), 70);
        assert_eq!(
            with_bypass.total_request_elems(),
            without.total_request_elems()
        );
        assert!((with_bypass.ratio_to(&without) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = Traffic::default();
        let b = Traffic {
            vector_load_elems: 1,
            vector_store_elems: 2,
            scalar_load_words: 3,
            scalar_store_words: 4,
            bypassed_elems: 5,
            bypassed_loads: 6,
        };
        a += b;
        a += b;
        assert_eq!(a.vector_store_elems, 4);
        assert_eq!(a.bypassed_loads, 12);
        assert_eq!(a.memory_bytes(), (2 + 4 + 6 + 8) * 8);
    }

    #[test]
    fn ratio_to_zero_baseline_is_zero() {
        let t = Traffic::default();
        assert_eq!(t.ratio_to(&Traffic::default()), 0.0);
    }
}
