//! The 8-state machine occupancy breakdown of the paper's Figure 1.
//!
//! The machine state is a 3-tuple over the three vector resources: the
//! general-purpose unit `FU2`, the restricted unit `FU1` and the memory
//! port `LD`. Each cycle falls in one of the eight combinations; the paper
//! writes them `(FU2, FU1, LD)` down to `( , , )` (all idle).

use std::fmt;
use std::ops::BitOr;

/// A set of busy vector resources during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitState(u8);

impl UnitState {
    /// The memory port is busy.
    pub const LD: UnitState = UnitState(0b001);
    /// The restricted functional unit is busy.
    pub const FU1: UnitState = UnitState(0b010);
    /// The general-purpose functional unit is busy.
    pub const FU2: UnitState = UnitState(0b100);

    /// No vector resource is busy: the `( , , )` state whose cycles
    /// decoupling removes.
    pub fn empty() -> UnitState {
        UnitState(0)
    }

    /// Builds a state from its component flags.
    #[inline]
    pub fn from_flags(fu2: bool, fu1: bool, ld: bool) -> UnitState {
        let mut bits = 0;
        if ld {
            bits |= Self::LD.0;
        }
        if fu1 {
            bits |= Self::FU1.0;
        }
        if fu2 {
            bits |= Self::FU2.0;
        }
        UnitState(bits)
    }

    /// Whether the given resource flag is set.
    pub fn contains(self, flag: UnitState) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// Index of this state in `0..8` (LD is bit 0, FU1 bit 1, FU2 bit 2).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All eight states in index order.
    pub fn all() -> [UnitState; 8] {
        [
            UnitState(0),
            UnitState(1),
            UnitState(2),
            UnitState(3),
            UnitState(4),
            UnitState(5),
            UnitState(6),
            UnitState(7),
        ]
    }

    /// Whether this state has both functional units running (the machine
    /// proceeds at peak floating-point speed).
    pub fn is_peak(self) -> bool {
        self.contains(Self::FU1) && self.contains(Self::FU2)
    }
}

impl BitOr for UnitState {
    type Output = UnitState;

    fn bitor(self, rhs: UnitState) -> UnitState {
        UnitState(self.0 | rhs.0)
    }
}

impl fmt::Display for UnitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{},{},{}>",
            if self.contains(Self::FU2) {
                "FU2"
            } else {
                "   "
            },
            if self.contains(Self::FU1) {
                "FU1"
            } else {
                "   "
            },
            if self.contains(Self::LD) { "LD" } else { "  " },
        )
    }
}

/// Accumulates cycles per machine state to reproduce Figure 1.
///
/// # Examples
///
/// ```
/// use dva_metrics::{StateTracker, UnitState};
/// let mut t = StateTracker::new();
/// t.add(UnitState::FU2 | UnitState::FU1 | UnitState::LD, 10);
/// assert_eq!(t.peak_cycles(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateTracker {
    counts: [u64; 8],
}

impl StateTracker {
    /// Creates an empty tracker.
    pub fn new() -> StateTracker {
        StateTracker::default()
    }

    /// Rebuilds a tracker from per-state cycle counts in
    /// [`UnitState::index`] order (the inverse of [`counts`](Self::counts),
    /// used by the JSON round-trip).
    pub fn from_counts(counts: [u64; 8]) -> StateTracker {
        StateTracker { counts }
    }

    /// Records one cycle spent in `state`.
    pub fn tick(&mut self, state: UnitState) {
        self.counts[state.index()] += 1;
    }

    /// Records `cycles` cycles spent in `state`.
    #[inline]
    pub fn add(&mut self, state: UnitState, cycles: u64) {
        self.counts[state.index()] += cycles;
    }

    /// Cycles recorded for one specific state.
    pub fn cycles_in(&self, state: UnitState) -> u64 {
        self.counts[state.index()]
    }

    /// Cycles in the all-idle `( , , )` state.
    pub fn idle_cycles(&self) -> u64 {
        self.counts[0]
    }

    /// Cycles where both functional units were busy (peak FP speed states
    /// `(FU2, FU1, LD)` and `(FU2, FU1, )`).
    pub fn peak_cycles(&self) -> u64 {
        UnitState::all()
            .iter()
            .filter(|s| s.is_peak())
            .map(|s| self.cycles_in(*s))
            .sum()
    }

    /// Cycles where the memory port was idle — the wasted opportunity the
    /// paper highlights in Section 3.
    pub fn memory_port_idle_cycles(&self) -> u64 {
        UnitState::all()
            .iter()
            .filter(|s| !s.contains(UnitState::LD))
            .map(|s| self.cycles_in(*s))
            .sum()
    }

    /// Total cycles recorded.
    pub fn total_cycles(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction (0..=1) of cycles spent in `state`.
    pub fn fraction(&self, state: UnitState) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles_in(state) as f64 / total as f64
        }
    }

    /// Per-state cycle counts in [`UnitState::index`] order.
    pub fn counts(&self) -> &[u64; 8] {
        &self.counts
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &StateTracker) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for StateTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_cycles().max(1);
        for state in UnitState::all() {
            writeln!(
                f,
                "{state} {:>12} ({:5.2}%)",
                self.cycles_in(state),
                100.0 * self.cycles_in(state) as f64 / total as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_indices_cover_all_eight_combinations() {
        let mut seen = [false; 8];
        for fu2 in [false, true] {
            for fu1 in [false, true] {
                for ld in [false, true] {
                    let s = UnitState::from_flags(fu2, fu1, ld);
                    assert!(!seen[s.index()]);
                    seen[s.index()] = true;
                    assert_eq!(s.contains(UnitState::LD), ld);
                    assert_eq!(s.contains(UnitState::FU1), fu1);
                    assert_eq!(s.contains(UnitState::FU2), fu2);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn peak_states_require_both_fus() {
        assert!((UnitState::FU2 | UnitState::FU1).is_peak());
        assert!((UnitState::FU2 | UnitState::FU1 | UnitState::LD).is_peak());
        assert!(!(UnitState::FU2 | UnitState::LD).is_peak());
    }

    #[test]
    fn tracker_accumulates_and_merges() {
        let mut a = StateTracker::new();
        a.add(UnitState::empty(), 5);
        a.add(UnitState::LD, 3);
        let mut b = StateTracker::new();
        b.add(UnitState::empty(), 2);
        a.merge(&b);
        assert_eq!(a.idle_cycles(), 7);
        assert_eq!(a.total_cycles(), 10);
        assert_eq!(a.memory_port_idle_cycles(), 7);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut t = StateTracker::new();
        for (i, s) in UnitState::all().into_iter().enumerate() {
            t.add(s, i as u64 + 1);
        }
        let sum: f64 = UnitState::all().iter().map(|s| t.fraction(*s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_names_match_paper_tuples() {
        assert_eq!(
            (UnitState::FU2 | UnitState::FU1 | UnitState::LD).to_string(),
            "<FU2,FU1,LD>"
        );
        assert_eq!(UnitState::empty().to_string(), "<   ,   ,  >");
    }
}
