//! Minimal aligned-table rendering for experiment output.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names, labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table of strings with a header row, rendered either as aligned
/// ASCII (for terminals) or CSV (for plotting).
///
/// # Examples
///
/// ```
/// use dva_metrics::Table;
/// let mut t = Table::new(["program", "cycles"]);
/// t.row(["ARC2D", "123"]);
/// let ascii = t.to_ascii();
/// assert!(ascii.contains("ARC2D"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned and the rest right-aligned by default.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Rebuilds a table from a header row and data rows — the inverse of
    /// [`headers`](Table::headers)/[`rows`](Table::rows), used by the
    /// artifact layer to re-render tables that round-tripped through a
    /// serialized form. Alignment is the [`Table::new`] default.
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from the header's.
    pub fn from_parts(
        headers: impl IntoIterator<Item = String>,
        rows: impl IntoIterator<Item = Vec<String>>,
    ) -> Table {
        let mut table = Table::new(headers);
        for row in rows {
            table.row(row);
        }
        table
    }

    /// The header row.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Overrides the alignment of one column.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn align(&mut self, column: usize, align: Align) -> &mut Self {
        self.aligns[column] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row does not have exactly one cell per header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII with a separator under the
    /// header.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => out.push_str(&format!("{:<width$}", cell, width = widths[i])),
                    Align::Right => out.push_str(&format!("{:>width$}", cell, width = widths[i])),
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (header row included, fields quoted only
    /// when they contain commas).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut render = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        render(&self.headers);
        for row in &self.rows {
            render(row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_aligns_numbers_right() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["bb", "100"]);
        let ascii = t.to_ascii();
        let lines: Vec<&str> = ascii.lines().collect();
        assert!(lines[2].starts_with("a "));
        assert!(lines[2].ends_with("  1"));
        assert!(lines[3].ends_with("100"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a,b", "1"]);
        assert_eq!(t.to_csv(), "k,v\n\"a,b\",1\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["only"]);
        t.row(["a", "b"]);
    }

    #[test]
    fn alignment_override_applies() {
        let mut t = Table::new(["x", "y"]);
        t.align(1, Align::Left);
        t.row(["q", "w"]);
        assert!(t.to_ascii().contains('w'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
