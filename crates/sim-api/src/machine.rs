//! The unified machine abstraction.

use crate::result::SimResult;
use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_isa::Program;
use dva_ref::{RefParams, RefSim};

/// One of the paper's machines, ready to simulate any [`Program`].
///
/// `Machine` unifies the three front doors of the workspace —
/// [`RefSim`], [`DvaSim`] and [`ideal_bound`] — behind one
/// [`simulate`](Machine::simulate) method returning one [`SimResult`]
/// type, so experiment code can treat "which machine" as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Machine {
    /// The reference (coupled) vector architecture — a Convex C3400 model.
    Ref(RefParams),
    /// The decoupled vector architecture, with or without the bypass unit.
    Dva(DvaConfig),
    /// The IDEAL resource lower bound of Section 5 (latency independent).
    Ideal,
}

impl Machine {
    /// The reference machine at the given memory latency.
    pub fn reference(latency: u64) -> Machine {
        Machine::Ref(RefParams::with_latency(latency))
    }

    /// The paper's base DVA (256-slot AVDQ, 16-slot store queue, no
    /// bypass) at the given memory latency.
    pub fn dva(latency: u64) -> Machine {
        Machine::Dva(DvaConfig::dva(latency))
    }

    /// A `BYP load/store` bypass configuration of Section 7.
    pub fn byp(latency: u64, load_queue: usize, store_queue: usize) -> Machine {
        Machine::Dva(DvaConfig::byp(latency, load_queue, store_queue))
    }

    /// The IDEAL lower bound.
    pub fn ideal() -> Machine {
        Machine::Ideal
    }

    /// This machine with its memory latency replaced (no-op for IDEAL,
    /// which has no memory system). Used by sweeps to stamp one machine
    /// template across a latency grid.
    #[must_use]
    pub fn with_latency(mut self, latency: u64) -> Machine {
        match &mut self {
            Machine::Ref(params) => params.memory.latency = latency,
            Machine::Dva(config) => config.memory.latency = latency,
            Machine::Ideal => {}
        }
        self
    }

    /// The configured memory latency, if the machine has a memory system.
    pub fn latency(&self) -> Option<u64> {
        match self {
            Machine::Ref(params) => Some(params.memory.latency),
            Machine::Dva(config) => Some(config.memory.latency),
            Machine::Ideal => None,
        }
    }

    /// A short display label: `REF`, `DVA`, `BYP 4/8` or `IDEAL`.
    ///
    /// The label deliberately omits the latency — sweeps use it as the
    /// machine axis of the (machine, program, latency) grid. It is *not*
    /// unique across every configuration: non-bypass DVA variants that
    /// differ only in queue sizes or uarch knobs all label as `DVA`.
    /// Sweeps over such variants should read their points positionally
    /// (declaration order) rather than by label.
    pub fn label(&self) -> String {
        match self {
            Machine::Ref(_) => "REF".to_string(),
            Machine::Dva(config) if config.bypass => {
                format!("BYP {}/{}", config.queues.avdq, config.queues.store_queue)
            }
            Machine::Dva(_) => "DVA".to_string(),
            Machine::Ideal => "IDEAL".to_string(),
        }
    }

    /// Runs `program` to completion on this machine with the engines'
    /// next-event fast-forward enabled (the default — byte-identical to
    /// naive stepping, only faster).
    ///
    /// # Panics
    ///
    /// Panics if the decoupled engine detects a deadlock (an internal
    /// invariant violation — valid traces always complete).
    pub fn simulate(&self, program: &Program) -> SimResult {
        self.simulate_with(program, true)
    }

    /// Runs `program` with an explicit stepping strategy: `fast_forward`
    /// `false` forces naive per-cycle stepping (IDEAL has no timeline and
    /// ignores the flag). Exists so equivalence tests and benchmarks can
    /// compare the two; results are byte-identical either way.
    pub fn simulate_with(&self, program: &Program, fast_forward: bool) -> SimResult {
        match self {
            Machine::Ref(params) => RefSim::new(*params)
                .with_fast_forward(fast_forward)
                .run(program)
                .into(),
            Machine::Dva(config) => DvaSim::new(*config)
                .with_fast_forward(fast_forward)
                .run(program)
                .into(),
            Machine::Ideal => SimResult::from_ideal(ideal_bound(program), program),
        }
    }
}

impl From<RefParams> for Machine {
    fn from(params: RefParams) -> Machine {
        Machine::Ref(params)
    }
}

impl From<DvaConfig> for Machine {
    fn from(config: DvaConfig) -> Machine {
        Machine::Dva(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn labels_name_the_paper_configurations() {
        assert_eq!(Machine::reference(30).label(), "REF");
        assert_eq!(Machine::dva(30).label(), "DVA");
        assert_eq!(Machine::byp(30, 4, 8).label(), "BYP 4/8");
        assert_eq!(Machine::ideal().label(), "IDEAL");
    }

    #[test]
    fn with_latency_restamps_the_memory_system() {
        assert_eq!(Machine::reference(1).with_latency(70).latency(), Some(70));
        assert_eq!(Machine::dva(1).with_latency(70).latency(), Some(70));
        assert_eq!(Machine::ideal().with_latency(70).latency(), None);
        // Everything else is preserved.
        let byp = Machine::byp(1, 4, 8).with_latency(50);
        assert_eq!(byp.label(), "BYP 4/8");
    }

    #[test]
    fn simulate_agrees_with_the_native_front_doors() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        let unified = Machine::reference(30).simulate(&program);
        let native = RefSim::new(RefParams::with_latency(30)).run(&program);
        assert_eq!(unified.cycles, native.cycles);
        assert_eq!(unified.insts, native.insts);

        let unified = Machine::dva(30).simulate(&program);
        let native = DvaSim::new(DvaConfig::dva(30)).run(&program);
        assert_eq!(unified.cycles, native.cycles);
        assert_eq!(unified.traffic, native.traffic);

        let unified = Machine::ideal().simulate(&program);
        assert_eq!(unified.cycles, ideal_bound(&program).cycles());
    }
}
