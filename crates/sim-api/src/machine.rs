//! The unified machine abstraction.

use crate::prepare::{PreparedProgram, Runners};
use crate::result::SimResult;
use dva_core::{DvaConfig, DvaSim};
use dva_engine::{Driver, Observers, Processor};
use dva_isa::Program;
use dva_memory::MemoryModelKind;
use dva_ref::{RefParams, RefSim};
use std::fmt;

/// One of the paper's machines, ready to simulate any [`Program`].
///
/// `Machine` unifies the front doors of the workspace — [`RefSim`],
/// [`DvaSim`], [`ideal_bound`](dva_core::ideal_bound) and any user-defined
/// [`Processor`] via [`Machine::custom`] — behind one
/// [`simulate`](Machine::simulate) method returning one [`SimResult`]
/// type, so experiment code can treat "which machine" as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Machine {
    /// The reference (coupled) vector architecture — a Convex C3400 model.
    Ref(RefParams),
    /// The decoupled vector architecture, with or without the bypass unit.
    Dva(DvaConfig),
    /// The IDEAL resource lower bound of Section 5 (latency independent).
    Ideal,
    /// A user-defined machine: any boxed [`Processor`] driven through the
    /// shared `dva-engine` driver. Built with [`Machine::custom`].
    Custom(CustomMachine),
}

/// What a [`Machine::custom`] factory returns: the machine model to
/// drive, plus the observers the driver samples into (create them with
/// [`Observers::with_occupancy`] to histogram a queue occupancy).
///
/// The processor may borrow the program it was built from, exactly like
/// the built-in machines do.
pub struct CustomSim<'a> {
    /// The machine model to drive.
    pub processor: Box<dyn Processor + 'a>,
    /// The statistics sink for the run.
    pub observers: Observers,
}

/// A user-defined machine, created by [`Machine::custom`]: a display
/// name and a factory building a fresh [`CustomSim`] per run.
///
/// One-off ablation machines get the whole `Machine`/`Sweep` machinery —
/// parallel sweeps, latency grids (as far as [`Machine::with_latency`]
/// goes: custom machines have no generic latency knob, so it is a no-op),
/// unified results — without forking a simulator crate.
#[derive(Clone, Copy)]
pub struct CustomMachine {
    name: &'static str,
    build: for<'a> fn(&'a Program) -> CustomSim<'a>,
}

impl PartialEq for CustomMachine {
    /// Custom machines compare by display name: the factory is a
    /// function pointer, whose identity is not meaningful to compare.
    fn eq(&self, other: &CustomMachine) -> bool {
        self.name == other.name
    }
}

impl fmt::Debug for CustomMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomMachine")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// The reference machine at the given memory latency.
    pub fn reference(latency: u64) -> Machine {
        Machine::Ref(RefParams::with_latency(latency))
    }

    /// The paper's base DVA (256-slot AVDQ, 16-slot store queue, no
    /// bypass) at the given memory latency.
    pub fn dva(latency: u64) -> Machine {
        Machine::Dva(DvaConfig::dva(latency))
    }

    /// A `BYP load/store` bypass configuration of Section 7.
    pub fn byp(latency: u64, load_queue: usize, store_queue: usize) -> Machine {
        Machine::Dva(DvaConfig::byp(latency, load_queue, store_queue))
    }

    /// The IDEAL lower bound.
    pub fn ideal() -> Machine {
        Machine::Ideal
    }

    /// A user-defined machine: `build` constructs a fresh boxed
    /// [`Processor`] (plus its [`Observers`]) for each program, and the
    /// shared `dva-engine` driver runs it under exactly the clocking
    /// rules the built-in machines use — fast-forward, watchdog and all.
    ///
    /// ```
    /// use dva_engine::{Observers, Processor, Progress};
    /// use dva_isa::{Cycle, Program};
    /// use dva_metrics::UnitState;
    /// use dva_sim_api::{CustomSim, Machine};
    ///
    /// /// A machine that executes exactly one instruction per cycle.
    /// struct OneIpc<'a> {
    ///     program: &'a Program,
    ///     pc: usize,
    /// }
    ///
    /// impl Processor for OneIpc<'_> {
    ///     fn step(&mut self, _now: Cycle) -> Progress {
    ///         self.pc += 1;
    ///         Progress::Advanced
    ///     }
    ///     fn is_done(&self) -> bool {
    ///         self.pc >= self.program.len()
    ///     }
    ///     fn next_event_after(&self, _now: Cycle) -> Option<Cycle> {
    ///         None
    ///     }
    ///     fn quiesce_at(&self) -> Cycle {
    ///         0
    ///     }
    ///     fn sample(&self, _now: Cycle, obs: &mut Observers) {
    ///         obs.record_state(UnitState::empty());
    ///     }
    ///     fn report(&self, _cycles: Cycle) -> dva_engine::Report {
    ///         dva_engine::Report {
    ///             insts: self.program.len() as u64,
    ///             ..Default::default()
    ///         }
    ///     }
    /// }
    ///
    /// let machine = Machine::custom("1IPC", |program| CustomSim {
    ///     processor: Box::new(OneIpc { program, pc: 0 }),
    ///     observers: Observers::new(),
    /// });
    /// let program = dva_workloads::Benchmark::Trfd.program(dva_workloads::Scale::Quick);
    /// let result = machine.simulate(&program);
    /// assert_eq!(result.cycles, program.len() as u64);
    /// assert!((result.ipc() - 1.0).abs() < 1e-9);
    /// ```
    pub fn custom(name: &'static str, build: for<'a> fn(&'a Program) -> CustomSim<'a>) -> Machine {
        Machine::Custom(CustomMachine { name, build })
    }

    /// This machine with its memory latency replaced (no-op for IDEAL
    /// and custom machines, which have no generic memory knob). Used by
    /// sweeps to stamp one machine template across a latency grid.
    #[must_use]
    pub fn with_latency(mut self, latency: u64) -> Machine {
        match &mut self {
            Machine::Ref(params) => params.memory.latency = latency,
            Machine::Dva(config) => config.memory.latency = latency,
            Machine::Ideal | Machine::Custom(_) => {}
        }
        self
    }

    /// The configured memory latency, if the machine has a memory system.
    pub fn latency(&self) -> Option<u64> {
        match self {
            Machine::Ref(params) => Some(params.memory.latency),
            Machine::Dva(config) => Some(config.memory.latency),
            Machine::Ideal | Machine::Custom(_) => None,
        }
    }

    /// This machine with its memory-model backend replaced (no-op for
    /// IDEAL and custom machines, which have no generic memory knob).
    /// Used by sweeps to stamp one machine template across the memory
    /// axis of the grid, exactly like [`Machine::with_latency`] does for
    /// the latency axis.
    ///
    /// ```
    /// use dva_memory::MemoryModelKind;
    /// use dva_sim_api::Machine;
    ///
    /// let banked = MemoryModelKind::Banked { banks: 8, bank_busy: 8 };
    /// let machine = Machine::dva(30).with_memory_model(banked);
    /// assert_eq!(machine.memory_model(), Some(banked));
    /// assert_eq!(machine.latency(), Some(30)); // everything else kept
    /// ```
    #[must_use]
    pub fn with_memory_model(mut self, model: MemoryModelKind) -> Machine {
        match &mut self {
            Machine::Ref(params) => params.memory.model = model,
            Machine::Dva(config) => config.memory.model = model,
            Machine::Ideal | Machine::Custom(_) => {}
        }
        self
    }

    /// The configured memory-model backend, if the machine has a memory
    /// system.
    pub fn memory_model(&self) -> Option<MemoryModelKind> {
        match self {
            Machine::Ref(params) => Some(params.memory.model),
            Machine::Dva(config) => Some(config.memory.model),
            Machine::Ideal | Machine::Custom(_) => None,
        }
    }

    /// A short display label: `REF`, `DVA`, `BYP 4/8`, `IDEAL`, or a
    /// custom machine's name.
    ///
    /// The label deliberately omits the latency — sweeps use it as the
    /// machine axis of the (machine, program, latency) grid. It is *not*
    /// unique across every configuration: non-bypass DVA variants that
    /// differ only in queue sizes or uarch knobs all label as `DVA`.
    /// Sweeps over such variants should read their points positionally
    /// (declaration order) rather than by label.
    pub fn label(&self) -> String {
        match self {
            Machine::Ref(_) => "REF".to_string(),
            Machine::Dva(config) if config.bypass => {
                format!("BYP {}/{}", config.queues.avdq, config.queues.store_queue)
            }
            Machine::Dva(_) => "DVA".to_string(),
            Machine::Ideal => "IDEAL".to_string(),
            Machine::Custom(custom) => custom.name.to_string(),
        }
    }

    /// Runs `program` to completion on this machine with the engines'
    /// next-event fast-forward enabled (the default — byte-identical to
    /// naive stepping, only faster).
    ///
    /// # Panics
    ///
    /// Panics if the engine detects a deadlock (an internal invariant
    /// violation — valid traces always complete).
    pub fn simulate(&self, program: &Program) -> SimResult {
        self.simulate_with(program, true)
    }

    /// Runs `program` with an explicit stepping strategy: `fast_forward`
    /// `false` forces naive per-cycle stepping (IDEAL has no timeline and
    /// ignores the flag). Exists so equivalence tests and benchmarks can
    /// compare the two; results are byte-identical either way.
    pub fn simulate_with(&self, program: &Program, fast_forward: bool) -> SimResult {
        self.simulate_prepared(
            &PreparedProgram::new(program),
            fast_forward,
            &mut Runners::new(),
        )
    }

    /// Runs a [`PreparedProgram`] — byte-identical to
    /// [`simulate_with`](Machine::simulate_with) on the source program,
    /// but the program's compiled form is reused from the preparation and
    /// the engine allocations are reused from `runners`. This is the hot
    /// entry point [`Sweep`](crate::Sweep) workers drive the grid
    /// through: one preparation per program, one `runners` per worker
    /// thread.
    pub fn simulate_prepared(
        &self,
        prepared: &PreparedProgram,
        fast_forward: bool,
        runners: &mut Runners,
    ) -> SimResult {
        self.try_simulate_prepared(prepared, fast_forward, runners)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`simulate_prepared`](Machine::simulate_prepared), but a detected
    /// deadlock comes back as a [`SimError`](dva_engine::SimError)
    /// instead of a panic — the entry point for callers (the streaming
    /// executor, the serving stack) that must survive one poisoned
    /// point. Panics *inside* a machine model are not caught here; the
    /// executor isolates those separately.
    pub fn try_simulate_prepared(
        &self,
        prepared: &PreparedProgram,
        fast_forward: bool,
        runners: &mut Runners,
    ) -> Result<SimResult, dva_engine::SimError> {
        Ok(match self {
            Machine::Ref(params) => runners
                .reference
                .try_run(
                    &RefSim::new(*params).with_fast_forward(fast_forward),
                    prepared.reference(),
                )?
                .into(),
            Machine::Dva(config) => runners
                .dva
                .try_run(
                    &DvaSim::new(*config).with_fast_forward(fast_forward),
                    prepared.dva(),
                )?
                .into(),
            Machine::Ideal => SimResult::from_ideal(prepared.ideal(), prepared.program()),
            Machine::Custom(custom) => {
                let CustomSim {
                    mut processor,
                    mut observers,
                } = (custom.build)(prepared.program());
                let completion = Driver::new()
                    .fast_forward(fast_forward)
                    .try_run(processor.as_mut(), &mut observers)?;
                let (core, occupancy) = completion.into_core(processor.as_ref(), observers);
                SimResult::from_custom(core, occupancy)
            }
        })
    }
}

impl From<RefParams> for Machine {
    fn from(params: RefParams) -> Machine {
        Machine::Ref(params)
    }
}

impl From<DvaConfig> for Machine {
    fn from(config: DvaConfig) -> Machine {
        Machine::Dva(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_engine::{Progress, Report};
    use dva_isa::Cycle;
    use dva_metrics::{Histogram, UnitState};
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn labels_name_the_paper_configurations() {
        assert_eq!(Machine::reference(30).label(), "REF");
        assert_eq!(Machine::dva(30).label(), "DVA");
        assert_eq!(Machine::byp(30, 4, 8).label(), "BYP 4/8");
        assert_eq!(Machine::ideal().label(), "IDEAL");
    }

    #[test]
    fn with_latency_restamps_the_memory_system() {
        assert_eq!(Machine::reference(1).with_latency(70).latency(), Some(70));
        assert_eq!(Machine::dva(1).with_latency(70).latency(), Some(70));
        assert_eq!(Machine::ideal().with_latency(70).latency(), None);
        // Everything else is preserved.
        let byp = Machine::byp(1, 4, 8).with_latency(50);
        assert_eq!(byp.label(), "BYP 4/8");
    }

    #[test]
    fn simulate_agrees_with_the_native_front_doors() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        let unified = Machine::reference(30).simulate(&program);
        let native = RefSim::new(RefParams::with_latency(30)).run(&program);
        assert_eq!(unified.cycles, native.cycles);
        assert_eq!(unified.insts, native.insts);

        let unified = Machine::dva(30).simulate(&program);
        let native = DvaSim::new(DvaConfig::dva(30)).run(&program);
        assert_eq!(unified.cycles, native.cycles);
        assert_eq!(unified.traffic, native.traffic);

        let unified = Machine::ideal().simulate(&program);
        assert_eq!(unified.cycles, dva_core::ideal_bound(&program).cycles());
    }

    /// The one-off ablation machine the tentpole promises: a toy
    /// processor that serializes every instruction behind a fixed
    /// per-instruction delay, defined right here — no crate forked — yet
    /// swept and fast-forwarded like the real machines.
    struct FixedDelay<'a> {
        program: &'a Program,
        pc: usize,
        ready_at: Cycle,
        delay: Cycle,
        stalls: u64,
    }

    impl Processor for FixedDelay<'_> {
        fn step(&mut self, now: Cycle) -> Progress {
            if now >= self.ready_at {
                self.pc += 1;
                self.ready_at = now + self.delay;
                Progress::Advanced
            } else {
                self.stalls += 1;
                Progress::Stalled
            }
        }
        fn is_done(&self) -> bool {
            self.pc >= self.program.len()
        }
        fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
            Some(self.ready_at).filter(|&t| t > now)
        }
        fn quiesce_at(&self) -> Cycle {
            0
        }
        fn sample(&self, now: Cycle, obs: &mut Observers) {
            obs.record_state(UnitState::from_flags(false, now < self.ready_at, false));
            obs.record_occupancy(usize::from(now < self.ready_at));
        }
        fn account_skipped(&mut self, _now: Cycle, skipped: u64) {
            self.stalls += skipped;
        }
        fn report(&self, _cycles: Cycle) -> Report {
            Report {
                insts: self.program.len() as u64,
                stall_cycles: self.stalls,
                ..Default::default()
            }
        }
    }

    fn fixed_delay_sim(program: &Program) -> CustomSim<'_> {
        CustomSim {
            processor: Box::new(FixedDelay {
                program,
                pc: 0,
                ready_at: 0,
                delay: 3,
                stalls: 0,
            }),
            observers: Observers::with_occupancy(Histogram::new(1)),
        }
    }

    #[test]
    fn custom_machines_run_through_the_shared_driver() {
        let machine = Machine::custom("DELAY3", fixed_delay_sim);
        assert_eq!(machine.label(), "DELAY3");
        assert_eq!(machine.latency(), None);
        assert_eq!(machine.with_latency(70), machine); // no latency knob

        let program = Benchmark::Trfd.program(Scale::Quick);
        let fast = machine.simulate(&program);
        let naive = machine.simulate_with(&program, false);
        // The shared driver's fast-forward applies to custom machines
        // too, byte-identically.
        assert_eq!(fast, naive);
        assert_eq!(naive.ticks_executed.get(), naive.cycles);
        assert!(fast.ticks_executed.get() < fast.cycles);
        // One instruction every 3 cycles, measured through the same
        // result plumbing as the built-in machines.
        assert_eq!(fast.cycles, 3 * program.len() as u64 - 2);
        assert_eq!(fast.insts, program.len() as u64);
        assert!(fast.stall_cycles > 0);
        assert!(fast.occupancy_histogram().is_some());
        assert!(fast.avdq_occupancy().is_none());
    }

    #[test]
    fn custom_machines_ride_in_sweeps() {
        use crate::Sweep;
        let results = Sweep::new()
            .machines([Machine::dva(1), Machine::custom("DELAY3", fixed_delay_sim)])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 30])
            .scale(Scale::Quick)
            .run();
        assert_eq!(results.points.len(), 4);
        assert_eq!(results.labels(), vec!["DVA", "DELAY3"]);
        // The custom machine has no latency knob: both points agree.
        let delay: Vec<u64> = results
            .of_machine("DELAY3")
            .map(|p| p.result.cycles)
            .collect();
        assert_eq!(delay[0], delay[1]);
    }
}
