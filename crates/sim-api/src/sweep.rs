//! Parallel sweep sessions over machines × programs × latencies ×
//! memory models.

use crate::cancel::CancelToken;
use crate::prepare::Runners;
use crate::stream::{self, IndexedSweepStream, PointSpec, SweepStream};
use crate::{Machine, SimResult};
use dva_isa::Program;
use dva_memory::MemoryModelKind;
use dva_workloads::{Benchmark, Scale};

/// A sweep session: the cross-product of machines, programs, memory
/// latencies and memory-model backends, executed by a pool of OS
/// threads.
///
/// Results come back as typed [`SweepPoint`]s in a deterministic order
/// (program-major, then latency, then memory model, then machine) that
/// is **independent of the thread count** — a parallel run is
/// byte-identical to a sequential one.
///
/// ```
/// use dva_sim_api::{Machine, Sweep};
/// use dva_workloads::{Benchmark, Scale};
///
/// let results = Sweep::new()
///     .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
///     .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
///     .latencies([1, 100])
///     .scale(Scale::Quick)
///     .run();
/// assert_eq!(results.points.len(), 3 * 2 * 2);
/// let speedup = results.cycles("REF", Benchmark::Trfd, 100).unwrap() as f64
///     / results.cycles("DVA", Benchmark::Trfd, 100).unwrap() as f64;
/// assert!(speedup > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    pub(crate) machines: Vec<Machine>,
    pub(crate) benchmarks: Vec<Benchmark>,
    pub(crate) programs: Vec<Program>,
    pub(crate) latencies: Vec<u64>,
    pub(crate) memory_models: Vec<MemoryModelKind>,
    pub(crate) scale: Scale,
    pub(crate) threads: usize,
    pub(crate) fast_forward: bool,
    pub(crate) lanes: usize,
    pub(crate) cancel: CancelToken,
}

/// The lane count [`Sweep::effective_lanes`] resolves `0` (auto) to.
pub(crate) const DEFAULT_LANES: usize = 16;

impl Default for Sweep {
    /// An empty session with fast-forward enabled.
    fn default() -> Sweep {
        Sweep {
            machines: Vec::new(),
            benchmarks: Vec::new(),
            programs: Vec::new(),
            latencies: Vec::new(),
            memory_models: Vec::new(),
            scale: Scale::default(),
            threads: 0,
            fast_forward: true,
            lanes: 0,
            cancel: CancelToken::new(),
        }
    }
}

/// One measurement of one machine on one program at one latency.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The machine that ran, already stamped with [`SweepPoint::latency`].
    pub machine: Machine,
    /// The machine's display label (`REF`, `DVA`, `BYP 4/8`, `IDEAL`).
    pub label: String,
    /// The benchmark, when the program came from the benchmark suite.
    pub benchmark: Option<Benchmark>,
    /// The program's name (benchmark name or custom program name).
    pub program: String,
    /// Memory latency this point ran at.
    pub latency: u64,
    /// The memory-model coordinate of this grid point: the backend the
    /// sweep stamped (or, with an empty memory grid, the machine's own
    /// configured model — `Flat` for machines without a memory system).
    /// Like [`latency`](SweepPoint::latency), machines without a memory
    /// knob (IDEAL, custom) carry the grid coordinate but ignore it.
    pub memory: MemoryModelKind,
    /// The unified measurement.
    pub result: SimResult,
}

impl SweepPoint {
    /// Speedup of this point over `baseline` (baseline cycles / ours).
    pub fn speedup_over(&self, baseline: &SweepPoint) -> f64 {
        self.result.speedup_over(&baseline.result)
    }
}

/// All points of a completed [`Sweep`], in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// Program-major, then latency, then memory model, then machine —
    /// the order the grid was declared in, regardless of thread count.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty session; add machines, programs and latencies, then
    /// [`run`](Sweep::run).
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Adds machines to the sweep.
    #[must_use]
    pub fn machines(mut self, machines: impl IntoIterator<Item = Machine>) -> Sweep {
        self.machines.extend(machines);
        self
    }

    /// Adds one machine to the sweep.
    #[must_use]
    pub fn machine(mut self, machine: Machine) -> Sweep {
        self.machines.push(machine);
        self
    }

    /// Adds benchmark programs (generated at the session's
    /// [`scale`](Sweep::scale) when the sweep runs).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Sweep {
        self.benchmarks.extend(benchmarks);
        self
    }

    /// Adds one benchmark program.
    #[must_use]
    pub fn benchmark(mut self, benchmark: Benchmark) -> Sweep {
        self.benchmarks.push(benchmark);
        self
    }

    /// Adds a custom (non-benchmark) program; its [`Program::name`] labels
    /// the points. Programs share their instruction storage, so deriving
    /// sweep variants from an existing trace (e.g. via
    /// [`Program::with_name`]) copies no instructions.
    #[must_use]
    pub fn program(mut self, program: Program) -> Sweep {
        self.programs.push(program);
        self
    }

    /// Sets the memory latency grid. When the grid is empty (the default)
    /// each machine runs once at its own configured latency.
    #[must_use]
    pub fn latencies(mut self, latencies: impl IntoIterator<Item = u64>) -> Sweep {
        self.latencies.extend(latencies);
        self
    }

    /// Sets the memory-model grid: every machine×latency point runs once
    /// per backend. When the grid is empty (the default) each machine
    /// runs against its own configured model — existing latency-only
    /// sweeps are unchanged.
    ///
    /// ```
    /// use dva_memory::MemoryModelKind;
    /// use dva_sim_api::{Machine, Sweep};
    /// use dva_workloads::{Benchmark, Scale};
    ///
    /// let results = Sweep::new()
    ///     .machines([Machine::reference(1), Machine::dva(1)])
    ///     .benchmark(Benchmark::Trfd)
    ///     .latencies([1, 50])
    ///     .memory_models([
    ///         MemoryModelKind::Flat,
    ///         MemoryModelKind::Banked { banks: 8, bank_busy: 8 },
    ///     ])
    ///     .scale(Scale::Quick)
    ///     .run();
    /// assert_eq!(results.points.len(), 2 * 2 * 2);
    /// assert_eq!(results.memory_models().len(), 2);
    /// ```
    #[must_use]
    pub fn memory_models(mut self, models: impl IntoIterator<Item = MemoryModelKind>) -> Sweep {
        self.memory_models.extend(models);
        self
    }

    /// Adds one memory model to the sweep.
    #[must_use]
    pub fn memory_model(mut self, model: MemoryModelKind) -> Sweep {
        self.memory_models.push(model);
        self
    }

    /// Sets the trace scale benchmarks are generated at.
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Sweep {
        self.scale = scale;
        self
    }

    /// Sets the worker thread count; `0` (the default) is clamped to the
    /// machine's available parallelism when the sweep runs (see
    /// [`effective_threads`](Sweep::effective_threads)). `1` forces a
    /// sequential run.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Sweep {
        self.threads = threads;
        self
    }

    /// Whether the engines' next-event fast-forward is enabled for this
    /// session (see [`fast_forward`](Sweep::fast_forward)).
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// The worker count [`run`](Sweep::run) will actually use before
    /// clamping to the grid size: the configured
    /// [`threads`](Sweep::threads), with `0` resolved to
    /// [`std::thread::available_parallelism`] (or `1` when that cannot be
    /// determined).
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Enables or disables the engines' next-event fast-forward (on by
    /// default). Results are byte-identical either way — turning it off
    /// forces naive per-cycle stepping, which exists for verification and
    /// benchmarking.
    #[must_use]
    pub fn fast_forward(mut self, fast_forward: bool) -> Sweep {
        self.fast_forward = fast_forward;
        self
    }

    /// Sets the lane-batch width: how many grid points sharing a program
    /// and machine family one engine pass simulates in lockstep (points
    /// differing only along the latency and memory axes). `0` (the
    /// default) resolves to a built-in width when the sweep runs; `1`
    /// disables batching and runs every point on its own. Results are
    /// **independent of the lane count** — a batched sweep is
    /// byte-identical to a per-point one; lanes only trade memory for
    /// throughput.
    #[must_use]
    pub fn lanes(mut self, lanes: usize) -> Sweep {
        self.lanes = lanes;
        self
    }

    /// The lane-batch width [`run`](Sweep::run) will actually use: the
    /// configured [`lanes`](Sweep::lanes), with `0` resolved to the
    /// built-in default (currently 16).
    pub fn effective_lanes(&self) -> usize {
        match self.lanes {
            0 => DEFAULT_LANES,
            n => n,
        }
    }

    /// Attaches a cooperative cancellation token to the session's
    /// *streaming* runs: once the token is cancelled (explicitly or by
    /// its deadline), workers stop claiming further grid points and the
    /// stream ends early at the last in-order point. Every point that is
    /// yielded is still byte-identical to an uncancelled run; the
    /// blocking [`run`](Sweep::run) ignores the token (it has nobody to
    /// hand a partial grid to).
    #[must_use]
    pub fn cancel_token(mut self, cancel: CancelToken) -> Sweep {
        self.cancel = cancel;
        self
    }

    /// A handle on the session's cancellation token (clones share
    /// state): cancel it to stop in-flight streaming runs.
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Number of points the session will measure.
    pub fn len(&self) -> usize {
        let programs = self.benchmarks.len() + self.programs.len();
        let latencies = self.latencies.len().max(1);
        let models = self.memory_models.len().max(1);
        self.machines.len() * programs * latencies * models
    }

    /// Whether the session has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the session's grid — every point [`run`](Sweep::run)
    /// would measure, in the deterministic order it would return them —
    /// without simulating anything.
    ///
    /// This is the coordinate system external schedulers (the `dva-serve`
    /// result cache) address points by: each [`PointSpec`] carries its
    /// grid `index`, and a subset can be executed with
    /// [`run_subset_streaming`](Sweep::run_subset_streaming).
    ///
    /// An empty latency (or memory-model) grid means "each machine at its
    /// own latency (or model)". Benchmark programs are generated here, at
    /// the session's [`scale`](Sweep::scale); all points of one program
    /// axis entry share the program's instruction storage.
    pub fn grid(&self) -> Vec<PointSpec> {
        let programs: Vec<(Option<Benchmark>, Program)> = self
            .benchmarks
            .iter()
            .map(|&benchmark| (Some(benchmark), benchmark.program(self.scale)))
            .chain(self.programs.iter().map(|p| (None, p.clone())))
            .collect();

        let latencies: Vec<Option<u64>> = if self.latencies.is_empty() {
            vec![None]
        } else {
            self.latencies.iter().copied().map(Some).collect()
        };
        let models: Vec<Option<MemoryModelKind>> = if self.memory_models.is_empty() {
            vec![None]
        } else {
            self.memory_models.iter().copied().map(Some).collect()
        };
        let mut specs = Vec::with_capacity(self.len());
        for (benchmark, program) in &programs {
            for &latency in &latencies {
                for &model in &models {
                    for &machine in &self.machines {
                        let mut stamped = machine;
                        if let Some(latency) = latency {
                            stamped = stamped.with_latency(latency);
                        }
                        if let Some(model) = model {
                            stamped = stamped.with_memory_model(model);
                        }
                        specs.push(PointSpec {
                            index: specs.len(),
                            benchmark: *benchmark,
                            program: program.clone(),
                            machine: stamped,
                            latency: latency.unwrap_or_else(|| machine.latency().unwrap_or(0)),
                            memory: model.unwrap_or_else(|| {
                                machine.memory_model().unwrap_or(MemoryModelKind::Flat)
                            }),
                        });
                    }
                }
            }
        }
        specs
    }

    /// Runs every point of the session, fanning out across worker
    /// threads, and returns the points in deterministic grid order.
    ///
    /// Each program is *translated once*: the grid shares one
    /// [`PreparedProgram`](crate::PreparedProgram) per program axis entry
    /// (compiled lazily, by whichever worker gets there first), and each
    /// worker thread reuses one set of engine allocations ([`Runners`])
    /// across all the points it claims. Results are byte-identical to
    /// simulating every point from scratch — and to collecting
    /// [`run_streaming`](Sweep::run_streaming), which this delegates to
    /// when more than one worker is in play.
    pub fn run(&self) -> SweepResults {
        let specs = self.grid();
        let workers = self.effective_threads().clamp(1, specs.len().max(1));
        if workers <= 1 {
            // Inline sequential path: no threads, no channel — the
            // reference implementation the parallel paths are tested
            // against. It runs the same job plan as the workers, so the
            // lane batching is exercised (and verified) here too.
            let entries = stream::prepare(specs);
            let jobs = stream::plan_jobs(&entries, self.effective_lanes());
            let mut runners = Runners::new();
            let mut points: Vec<Option<SweepPoint>> = vec![None; entries.len()];
            for job in &jobs {
                stream::execute_job(
                    &entries,
                    &job.positions,
                    self.fast_forward,
                    &mut runners,
                    // The blocking path keeps its all-or-nothing
                    // contract: an isolated point fault re-raises.
                    |pos, outcome| points[pos] = Some(outcome.unwrap_or_else(|e| panic!("{e}"))),
                );
            }
            return SweepResults {
                points: points
                    .into_iter()
                    .map(|point| point.expect("every grid position belongs to exactly one job"))
                    .collect(),
            };
        }
        SweepResults {
            points: self.run_streaming().collect(),
        }
    }

    /// Runs the session like [`run`](Sweep::run), but yields each
    /// [`SweepPoint`] as soon as it (and every point before it) has been
    /// measured, instead of waiting for the whole grid.
    ///
    /// Points arrive in exactly the order [`run`](Sweep::run) returns
    /// them — deterministic grid order, independent of the thread count —
    /// so `sweep.run_streaming().collect()` equals `sweep.run().points`
    /// byte for byte. Workers execute points out of order (work stealing);
    /// the stream holds completed points back until their turn.
    ///
    /// Dropping the stream early cancels the remaining work: workers
    /// finish the point in hand and exit.
    pub fn run_streaming(&self) -> SweepStream {
        let specs = self.grid();
        let workers = self.effective_threads().clamp(1, specs.len().max(1));
        stream::stream_all(
            stream::prepare(specs),
            workers,
            self.fast_forward,
            self.effective_lanes(),
            self.cancel.clone(),
        )
    }

    /// Runs an arbitrary subset of this session's [`grid`](Sweep::grid),
    /// yielding `(grid_index, point)` pairs in the order the specs were
    /// given (independent of the thread count).
    ///
    /// This is the entry point for external schedulers that know some
    /// points already — the `dva-serve` result cache hands the misses
    /// here and merges the streamed points with its hits by grid index.
    /// Specs need not come from this session's grid at all; threading and
    /// fast-forward come from `self`, everything else from each spec.
    pub fn run_subset_streaming(&self, specs: Vec<PointSpec>) -> IndexedSweepStream {
        let workers = self.effective_threads().clamp(1, specs.len().max(1));
        stream::stream_indexed(
            stream::prepare(specs),
            workers,
            self.fast_forward,
            self.effective_lanes(),
            self.cancel.clone(),
        )
    }
}

impl SweepResults {
    /// The points of one benchmark, in latency-then-machine order.
    pub fn of(&self, benchmark: Benchmark) -> impl Iterator<Item = &SweepPoint> {
        self.points
            .iter()
            .filter(move |p| p.benchmark == Some(benchmark))
    }

    /// The points of one machine label, in program-then-latency order.
    pub fn of_machine<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a SweepPoint> {
        self.points.iter().filter(move |p| p.label == label)
    }

    /// Looks up one grid point by machine label, benchmark and latency.
    ///
    /// The `latency` must have been **measured** for this curve: on a
    /// sparse axis — an [`AdaptiveSweep`](crate::AdaptiveSweep) result,
    /// or a dense sweep queried at a latency it never swept — the lookup
    /// returns `None` rather than the nearest point. Use
    /// [`curve`](Self::curve) for the sampled latencies of a curve and
    /// [`interpolated_cycles`](Self::interpolated_cycles) to evaluate
    /// between them.
    ///
    /// When a sweep declares several machines with the same label (e.g.
    /// base-DVA variants differing only in queue sizes), this returns the
    /// first match in declaration order — iterate [`of`](Self::of)
    /// positionally instead. For custom programs added via
    /// [`Sweep::program`], use [`named`](Self::named).
    pub fn get(&self, label: &str, benchmark: Benchmark, latency: u64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.label == label && p.benchmark == Some(benchmark) && p.latency == latency)
    }

    /// Looks up one grid point by machine label, program name and
    /// latency. Works for benchmark programs (named after the benchmark)
    /// and custom programs alike. Like [`get`](Self::get), an unmeasured
    /// latency is a miss (`None`), not a nearest-neighbour answer.
    pub fn named(&self, label: &str, program: &str, latency: u64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.label == label && p.program == program && p.latency == latency)
    }

    /// Cycle count of one grid point (same lookup rules — and the same
    /// sparse-axis miss behavior — as [`get`](Self::get)).
    pub fn cycles(&self, label: &str, benchmark: Benchmark, latency: u64) -> Option<u64> {
        self.get(label, benchmark, latency).map(|p| p.result.cycles)
    }

    /// One curve — the points of one machine label, benchmark and memory
    /// model — as `(latency, point)` pairs sorted by latency. Works on
    /// dense and sparse (adaptive) axes alike; renderers should iterate
    /// this rather than assuming every latency of a uniform grid was
    /// measured.
    pub fn curve(
        &self,
        label: &str,
        benchmark: Benchmark,
        memory: MemoryModelKind,
    ) -> Vec<(u64, &SweepPoint)> {
        self.curve_by(|p| p.label == label && p.benchmark == Some(benchmark) && p.memory == memory)
    }

    /// [`curve`](Self::curve) keyed by program name instead of benchmark,
    /// for custom programs.
    pub fn curve_named(
        &self,
        label: &str,
        program: &str,
        memory: MemoryModelKind,
    ) -> Vec<(u64, &SweepPoint)> {
        self.curve_by(|p| p.label == label && p.program == program && p.memory == memory)
    }

    fn curve_by(&self, select: impl Fn(&SweepPoint) -> bool) -> Vec<(u64, &SweepPoint)> {
        let mut curve: Vec<(u64, &SweepPoint)> = self
            .points
            .iter()
            .filter(|p| select(p))
            .map(|p| (p.latency, p))
            .collect();
        curve.sort_by_key(|&(latency, _)| latency);
        curve
    }

    /// Cycle count of one curve at `latency`, linearly interpolating
    /// between the two nearest sampled latencies when the exact latency
    /// was not measured. Returns `None` when the latency lies outside the
    /// sampled range (no extrapolation) or the curve has no points.
    ///
    /// This is how renderers evaluate an
    /// [`AdaptiveSweep`](crate::AdaptiveSweep) result at dense-axis
    /// resolution: sampled latencies are exact, skipped ones are within
    /// the adaptive tolerance by construction.
    pub fn interpolated_cycles(
        &self,
        label: &str,
        program: &str,
        memory: MemoryModelKind,
        latency: u64,
    ) -> Option<f64> {
        let curve = self.curve_named(label, program, memory);
        match curve.binary_search_by_key(&latency, |&(l, _)| l) {
            Ok(i) => Some(curve[i].1.result.cycles as f64),
            Err(i) => {
                if i == 0 || i == curve.len() {
                    return None;
                }
                let (l0, p0) = curve[i - 1];
                let (l1, p1) = curve[i];
                let (c0, c1) = (p0.result.cycles as f64, p1.result.cycles as f64);
                Some(c0 + (c1 - c0) * (latency - l0) as f64 / (l1 - l0) as f64)
            }
        }
    }

    /// The points measured against one memory-model backend, in
    /// program-then-latency-then-machine order.
    pub fn of_memory(&self, memory: MemoryModelKind) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(move |p| p.memory == memory)
    }

    /// The distinct latencies measured, in first-seen order.
    pub fn latencies(&self) -> Vec<u64> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.latency) {
                seen.push(p.latency);
            }
        }
        seen
    }

    /// The distinct memory-model backends measured, in first-seen order.
    pub fn memory_models(&self) -> Vec<MemoryModelKind> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.memory) {
                seen.push(p.memory);
            }
        }
        seen
    }

    /// The distinct machine labels measured, in first-seen order.
    pub fn labels(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for p in &self.points {
            if !seen.iter().any(|l| l == &p.label) {
                seen.push(p.label.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(threads: usize) -> SweepResults {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies([1, 30])
            .scale(Scale::Quick)
            .threads(threads)
            .run()
    }

    #[test]
    fn grid_is_complete_and_ordered() {
        let results = small_sweep(1);
        assert_eq!(results.points.len(), 3 * 2 * 2);
        assert_eq!(results.latencies(), vec![1, 30]);
        assert_eq!(results.labels(), vec!["REF", "DVA", "IDEAL"]);
        // Program-major order: all TRFD points precede all DYFESM points.
        let first_dyfesm = results
            .points
            .iter()
            .position(|p| p.benchmark == Some(Benchmark::Dyfesm))
            .unwrap();
        assert!(results.points[..first_dyfesm]
            .iter()
            .all(|p| p.benchmark == Some(Benchmark::Trfd)));
        assert_eq!(results.of(Benchmark::Trfd).count(), 6);
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let sequential = small_sweep(1);
        let parallel = small_sweep(4);
        assert_eq!(sequential, parallel);
        assert_eq!(
            format!("{sequential:?}"),
            format!("{parallel:?}"),
            "parallel sweep must be byte-identical to sequential"
        );
    }

    #[test]
    fn empty_latency_grid_uses_each_machines_own_latency() {
        let results = Sweep::new()
            .machines([Machine::reference(42), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .run();
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.points[0].latency, 42);
        assert_eq!(results.points[1].latency, 0); // IDEAL has no memory
    }

    fn memory_sweep(threads: usize) -> SweepResults {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1)])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 30])
            .memory_models([
                MemoryModelKind::Flat,
                MemoryModelKind::Banked {
                    banks: 8,
                    bank_busy: 8,
                },
                MemoryModelKind::MultiPort { ports: 2 },
            ])
            .scale(Scale::Quick)
            .threads(threads)
            .run()
    }

    #[test]
    fn memory_model_grid_is_complete_and_ordered() {
        let results = memory_sweep(1);
        assert_eq!(results.points.len(), 2 * 2 * 3);
        assert_eq!(results.memory_models().len(), 3);
        for memory in results.memory_models() {
            assert_eq!(results.of_memory(memory).count(), 4);
        }
        // Latency-major over memory models: within one latency, all flat
        // points precede all banked points.
        let flat_positions: Vec<usize> = results
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.memory == MemoryModelKind::Flat && p.latency == 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flat_positions, vec![0, 1]);
        // The machine actually ran with the stamped backend.
        for p in &results.points {
            assert_eq!(p.machine.memory_model(), Some(p.memory));
        }
    }

    #[test]
    fn memory_model_sweeps_are_thread_count_independent() {
        assert_eq!(memory_sweep(1), memory_sweep(4));
    }

    #[test]
    fn memory_models_change_timing_but_not_work() {
        let results = memory_sweep(1);
        let flat = results
            .of_memory(MemoryModelKind::Flat)
            .find(|p| p.label == "REF" && p.latency == 30)
            .unwrap();
        let banked = results
            .of_memory(MemoryModelKind::Banked {
                banks: 8,
                bank_busy: 8,
            })
            .find(|p| p.label == "REF" && p.latency == 30)
            .unwrap();
        // Bank conflicts can only slow a run down, and never change the
        // instructions executed or the words moved.
        assert!(banked.result.cycles >= flat.result.cycles);
        assert_eq!(banked.result.insts, flat.result.insts);
        assert_eq!(banked.result.traffic, flat.result.traffic);
    }

    #[test]
    fn empty_memory_grid_uses_each_machines_own_model() {
        let banked = MemoryModelKind::Banked {
            banks: 8,
            bank_busy: 8,
        };
        let results = Sweep::new()
            .machines([Machine::dva(1).with_memory_model(banked), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .run();
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.points[0].memory, banked);
        assert_eq!(results.points[1].memory, MemoryModelKind::Flat); // IDEAL has no memory
    }

    #[test]
    fn lookups_miss_rather_than_round_on_sparse_axes() {
        let results = small_sweep(1); // latencies [1, 30]
                                      // A latency the sweep never measured is a miss, not a nearest-
                                      // neighbour answer — callers on sparse (adaptive) axes must use
                                      // `curve` / `interpolated_cycles`.
        assert!(results.get("DVA", Benchmark::Trfd, 15).is_none());
        assert!(results.named("DVA", "TRFD", 15).is_none());
        assert!(results.cycles("DVA", Benchmark::Trfd, 15).is_none());
        // Measured latencies still hit.
        assert!(results.get("DVA", Benchmark::Trfd, 30).is_some());
        // Unknown labels and programs miss too.
        assert!(results.get("NOPE", Benchmark::Trfd, 1).is_none());
        assert!(results.named("DVA", "NOPE", 1).is_none());
    }

    #[test]
    fn curves_sort_by_latency_and_interpolate_between_samples() {
        let results = Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1)])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 100, 30]) // deliberately unsorted, non-uniform
            .scale(Scale::Quick)
            .threads(1)
            .run();
        let curve = results.curve("DVA", Benchmark::Trfd, MemoryModelKind::Flat);
        assert_eq!(
            curve.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            vec![1, 30, 100],
            "curves are sorted by latency regardless of sweep order"
        );
        assert_eq!(
            curve
                .iter()
                .map(|&(l, p)| (l, p.result.cycles))
                .collect::<Vec<_>>(),
            results
                .curve_named("DVA", "TRFD", MemoryModelKind::Flat)
                .iter()
                .map(|&(l, p)| (l, p.result.cycles))
                .collect::<Vec<_>>()
        );
        // Exact latencies come back exactly.
        let at30 = results
            .interpolated_cycles("DVA", "TRFD", MemoryModelKind::Flat, 30)
            .unwrap();
        assert_eq!(at30, curve[1].1.result.cycles as f64);
        // Between samples, the answer is on the chord of the bracket.
        let mid = results
            .interpolated_cycles("DVA", "TRFD", MemoryModelKind::Flat, 65)
            .unwrap();
        let (c30, c100) = (
            curve[1].1.result.cycles as f64,
            curve[2].1.result.cycles as f64,
        );
        let expected = c30 + (c100 - c30) * (65.0 - 30.0) / (100.0 - 30.0);
        assert!((mid - expected).abs() < 1e-9);
        // Outside the sampled range there is no extrapolation.
        assert!(results
            .interpolated_cycles("DVA", "TRFD", MemoryModelKind::Flat, 0)
            .is_none());
        assert!(results
            .interpolated_cycles("DVA", "TRFD", MemoryModelKind::Flat, 101)
            .is_none());
        // And an empty curve yields nothing.
        assert!(results
            .interpolated_cycles("NOPE", "TRFD", MemoryModelKind::Flat, 30)
            .is_none());
    }

    #[test]
    fn zero_threads_clamps_to_available_parallelism() {
        let sweep = Sweep::new(); // threads defaults to 0
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(sweep.effective_threads(), expected);
        assert!(sweep.effective_threads() >= 1);
        assert_eq!(sweep.clone().threads(3).effective_threads(), 3);
        assert_eq!(sweep.threads(0).effective_threads(), expected);
    }

    #[test]
    fn custom_programs_ride_alongside_benchmarks() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        // `with_name` shares the benchmark's instruction storage — adding
        // a derived program to a sweep copies no instructions.
        let custom = program.with_name("custom");
        assert_eq!(custom.insts().as_ptr(), program.insts().as_ptr());
        let results = Sweep::new()
            .machine(Machine::dva(1))
            .program(custom)
            .latencies([1])
            .run();
        assert_eq!(results.points.len(), 1);
        assert_eq!(results.points[0].program, "custom");
        assert_eq!(results.points[0].benchmark, None);
        // The derived points match the benchmark's own simulation.
        assert_eq!(results.points[0].result, Machine::dva(1).simulate(&program));
    }
}
