//! Parallel sweep sessions over machines × programs × latencies ×
//! memory models.

use crate::prepare::{PreparedProgram, Runners};
use crate::{Machine, SimResult};
use dva_isa::Program;
use dva_memory::MemoryModelKind;
use dva_workloads::{Benchmark, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A sweep session: the cross-product of machines, programs, memory
/// latencies and memory-model backends, executed by a pool of OS
/// threads.
///
/// Results come back as typed [`SweepPoint`]s in a deterministic order
/// (program-major, then latency, then memory model, then machine) that
/// is **independent of the thread count** — a parallel run is
/// byte-identical to a sequential one.
///
/// ```
/// use dva_sim_api::{Machine, Sweep};
/// use dva_workloads::{Benchmark, Scale};
///
/// let results = Sweep::new()
///     .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
///     .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
///     .latencies([1, 100])
///     .scale(Scale::Quick)
///     .run();
/// assert_eq!(results.points.len(), 3 * 2 * 2);
/// let speedup = results.cycles("REF", Benchmark::Trfd, 100).unwrap() as f64
///     / results.cycles("DVA", Benchmark::Trfd, 100).unwrap() as f64;
/// assert!(speedup > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    machines: Vec<Machine>,
    benchmarks: Vec<Benchmark>,
    programs: Vec<Program>,
    latencies: Vec<u64>,
    memory_models: Vec<MemoryModelKind>,
    scale: Scale,
    threads: usize,
    fast_forward: bool,
}

impl Default for Sweep {
    /// An empty session with fast-forward enabled.
    fn default() -> Sweep {
        Sweep {
            machines: Vec::new(),
            benchmarks: Vec::new(),
            programs: Vec::new(),
            latencies: Vec::new(),
            memory_models: Vec::new(),
            scale: Scale::default(),
            threads: 0,
            fast_forward: true,
        }
    }
}

/// One measurement of one machine on one program at one latency.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The machine that ran, already stamped with [`SweepPoint::latency`].
    pub machine: Machine,
    /// The machine's display label (`REF`, `DVA`, `BYP 4/8`, `IDEAL`).
    pub label: String,
    /// The benchmark, when the program came from the benchmark suite.
    pub benchmark: Option<Benchmark>,
    /// The program's name (benchmark name or custom program name).
    pub program: String,
    /// Memory latency this point ran at.
    pub latency: u64,
    /// The memory-model coordinate of this grid point: the backend the
    /// sweep stamped (or, with an empty memory grid, the machine's own
    /// configured model — `Flat` for machines without a memory system).
    /// Like [`latency`](SweepPoint::latency), machines without a memory
    /// knob (IDEAL, custom) carry the grid coordinate but ignore it.
    pub memory: MemoryModelKind,
    /// The unified measurement.
    pub result: SimResult,
}

impl SweepPoint {
    /// Speedup of this point over `baseline` (baseline cycles / ours).
    pub fn speedup_over(&self, baseline: &SweepPoint) -> f64 {
        self.result.speedup_over(&baseline.result)
    }
}

/// All points of a completed [`Sweep`], in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// Program-major, then latency, then memory model, then machine —
    /// the order the grid was declared in, regardless of thread count.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty session; add machines, programs and latencies, then
    /// [`run`](Sweep::run).
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Adds machines to the sweep.
    #[must_use]
    pub fn machines(mut self, machines: impl IntoIterator<Item = Machine>) -> Sweep {
        self.machines.extend(machines);
        self
    }

    /// Adds one machine to the sweep.
    #[must_use]
    pub fn machine(mut self, machine: Machine) -> Sweep {
        self.machines.push(machine);
        self
    }

    /// Adds benchmark programs (generated at the session's
    /// [`scale`](Sweep::scale) when the sweep runs).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Sweep {
        self.benchmarks.extend(benchmarks);
        self
    }

    /// Adds one benchmark program.
    #[must_use]
    pub fn benchmark(mut self, benchmark: Benchmark) -> Sweep {
        self.benchmarks.push(benchmark);
        self
    }

    /// Adds a custom (non-benchmark) program; its [`Program::name`] labels
    /// the points. Programs share their instruction storage, so deriving
    /// sweep variants from an existing trace (e.g. via
    /// [`Program::with_name`]) copies no instructions.
    #[must_use]
    pub fn program(mut self, program: Program) -> Sweep {
        self.programs.push(program);
        self
    }

    /// Sets the memory latency grid. When the grid is empty (the default)
    /// each machine runs once at its own configured latency.
    #[must_use]
    pub fn latencies(mut self, latencies: impl IntoIterator<Item = u64>) -> Sweep {
        self.latencies.extend(latencies);
        self
    }

    /// Sets the memory-model grid: every machine×latency point runs once
    /// per backend. When the grid is empty (the default) each machine
    /// runs against its own configured model — existing latency-only
    /// sweeps are unchanged.
    ///
    /// ```
    /// use dva_memory::MemoryModelKind;
    /// use dva_sim_api::{Machine, Sweep};
    /// use dva_workloads::{Benchmark, Scale};
    ///
    /// let results = Sweep::new()
    ///     .machines([Machine::reference(1), Machine::dva(1)])
    ///     .benchmark(Benchmark::Trfd)
    ///     .latencies([1, 50])
    ///     .memory_models([
    ///         MemoryModelKind::Flat,
    ///         MemoryModelKind::Banked { banks: 8, bank_busy: 8 },
    ///     ])
    ///     .scale(Scale::Quick)
    ///     .run();
    /// assert_eq!(results.points.len(), 2 * 2 * 2);
    /// assert_eq!(results.memory_models().len(), 2);
    /// ```
    #[must_use]
    pub fn memory_models(mut self, models: impl IntoIterator<Item = MemoryModelKind>) -> Sweep {
        self.memory_models.extend(models);
        self
    }

    /// Adds one memory model to the sweep.
    #[must_use]
    pub fn memory_model(mut self, model: MemoryModelKind) -> Sweep {
        self.memory_models.push(model);
        self
    }

    /// Sets the trace scale benchmarks are generated at.
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Sweep {
        self.scale = scale;
        self
    }

    /// Sets the worker thread count; `0` (the default) uses the machine's
    /// available parallelism. `1` forces a sequential run.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Sweep {
        self.threads = threads;
        self
    }

    /// Enables or disables the engines' next-event fast-forward (on by
    /// default). Results are byte-identical either way — turning it off
    /// forces naive per-cycle stepping, which exists for verification and
    /// benchmarking.
    #[must_use]
    pub fn fast_forward(mut self, fast_forward: bool) -> Sweep {
        self.fast_forward = fast_forward;
        self
    }

    /// Number of points the session will measure.
    pub fn len(&self) -> usize {
        let programs = self.benchmarks.len() + self.programs.len();
        let latencies = self.latencies.len().max(1);
        let models = self.memory_models.len().max(1);
        self.machines.len() * programs * latencies * models
    }

    /// Whether the session has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs every point of the session, fanning out across worker
    /// threads, and returns the points in deterministic grid order.
    ///
    /// Each program is *translated once*: the grid shares one
    /// [`PreparedProgram`] per program axis entry (compiled lazily, by
    /// whichever worker gets there first), and each worker thread reuses
    /// one set of engine allocations ([`Runners`]) across all the points
    /// it claims. Results are byte-identical to simulating every point
    /// from scratch.
    pub fn run(&self) -> SweepResults {
        // Resolve the program axis once; all grid points of a program
        // share one prepared (translate-once) form.
        let targets: Vec<(Option<Benchmark>, PreparedProgram)> = self
            .benchmarks
            .iter()
            .map(|&benchmark| {
                (
                    Some(benchmark),
                    PreparedProgram::new(&benchmark.program(self.scale)),
                )
            })
            .chain(
                self.programs
                    .iter()
                    .map(|program| (None, PreparedProgram::new(program))),
            )
            .collect();

        // The job grid, in the order the points are returned. An empty
        // latency (or memory-model) grid means "each machine at its own
        // latency (or model)".
        type Job = (usize, Machine, u64, MemoryModelKind);
        let latencies: Vec<Option<u64>> = if self.latencies.is_empty() {
            vec![None]
        } else {
            self.latencies.iter().copied().map(Some).collect()
        };
        let models: Vec<Option<MemoryModelKind>> = if self.memory_models.is_empty() {
            vec![None]
        } else {
            self.memory_models.iter().copied().map(Some).collect()
        };
        let mut jobs: Vec<Job> = Vec::new();
        for target in 0..targets.len() {
            for &latency in &latencies {
                for &model in &models {
                    for &machine in &self.machines {
                        let mut stamped = machine;
                        if let Some(latency) = latency {
                            stamped = stamped.with_latency(latency);
                        }
                        if let Some(model) = model {
                            stamped = stamped.with_memory_model(model);
                        }
                        jobs.push((
                            target,
                            stamped,
                            latency.unwrap_or_else(|| machine.latency().unwrap_or(0)),
                            model.unwrap_or_else(|| {
                                machine.memory_model().unwrap_or(MemoryModelKind::Flat)
                            }),
                        ));
                    }
                }
            }
        }

        let workers = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .clamp(1, jobs.len().max(1));

        let run_job = |(target, machine, latency, memory): &Job, runners: &mut Runners| {
            let (benchmark, prepared) = &targets[*target];
            SweepPoint {
                machine: *machine,
                label: machine.label(),
                benchmark: *benchmark,
                program: prepared.program().name().to_string(),
                latency: *latency,
                memory: *memory,
                result: machine.simulate_prepared(prepared, self.fast_forward, runners),
            }
        };

        if workers <= 1 {
            let mut runners = Runners::new();
            return SweepResults {
                points: jobs.iter().map(|job| run_job(job, &mut runners)).collect(),
            };
        }

        // Work-stealing by atomic index: each worker claims the next
        // unclaimed job, keeps (index, point) pairs locally, and the
        // merge re-establishes grid order — identical to the sequential
        // path byte for byte.
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, SweepPoint)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut runners = Runners::new();
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(idx) else { break };
                            local.push((idx, run_job(job, &mut runners)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(idx, _)| *idx);
        SweepResults {
            points: indexed.into_iter().map(|(_, point)| point).collect(),
        }
    }
}

impl SweepResults {
    /// The points of one benchmark, in latency-then-machine order.
    pub fn of(&self, benchmark: Benchmark) -> impl Iterator<Item = &SweepPoint> {
        self.points
            .iter()
            .filter(move |p| p.benchmark == Some(benchmark))
    }

    /// The points of one machine label, in program-then-latency order.
    pub fn of_machine<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a SweepPoint> {
        self.points.iter().filter(move |p| p.label == label)
    }

    /// Looks up one grid point by machine label, benchmark and latency.
    ///
    /// When a sweep declares several machines with the same label (e.g.
    /// base-DVA variants differing only in queue sizes), this returns the
    /// first match in declaration order — iterate [`of`](Self::of)
    /// positionally instead. For custom programs added via
    /// [`Sweep::program`], use [`named`](Self::named).
    pub fn get(&self, label: &str, benchmark: Benchmark, latency: u64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.label == label && p.benchmark == Some(benchmark) && p.latency == latency)
    }

    /// Looks up one grid point by machine label, program name and
    /// latency. Works for benchmark programs (named after the benchmark)
    /// and custom programs alike.
    pub fn named(&self, label: &str, program: &str, latency: u64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.label == label && p.program == program && p.latency == latency)
    }

    /// Cycle count of one grid point (same lookup rules as
    /// [`get`](Self::get)).
    pub fn cycles(&self, label: &str, benchmark: Benchmark, latency: u64) -> Option<u64> {
        self.get(label, benchmark, latency).map(|p| p.result.cycles)
    }

    /// The points measured against one memory-model backend, in
    /// program-then-latency-then-machine order.
    pub fn of_memory(&self, memory: MemoryModelKind) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(move |p| p.memory == memory)
    }

    /// The distinct latencies measured, in first-seen order.
    pub fn latencies(&self) -> Vec<u64> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.latency) {
                seen.push(p.latency);
            }
        }
        seen
    }

    /// The distinct memory-model backends measured, in first-seen order.
    pub fn memory_models(&self) -> Vec<MemoryModelKind> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.memory) {
                seen.push(p.memory);
            }
        }
        seen
    }

    /// The distinct machine labels measured, in first-seen order.
    pub fn labels(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for p in &self.points {
            if !seen.iter().any(|l| l == &p.label) {
                seen.push(p.label.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(threads: usize) -> SweepResults {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies([1, 30])
            .scale(Scale::Quick)
            .threads(threads)
            .run()
    }

    #[test]
    fn grid_is_complete_and_ordered() {
        let results = small_sweep(1);
        assert_eq!(results.points.len(), 3 * 2 * 2);
        assert_eq!(results.latencies(), vec![1, 30]);
        assert_eq!(results.labels(), vec!["REF", "DVA", "IDEAL"]);
        // Program-major order: all TRFD points precede all DYFESM points.
        let first_dyfesm = results
            .points
            .iter()
            .position(|p| p.benchmark == Some(Benchmark::Dyfesm))
            .unwrap();
        assert!(results.points[..first_dyfesm]
            .iter()
            .all(|p| p.benchmark == Some(Benchmark::Trfd)));
        assert_eq!(results.of(Benchmark::Trfd).count(), 6);
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let sequential = small_sweep(1);
        let parallel = small_sweep(4);
        assert_eq!(sequential, parallel);
        assert_eq!(
            format!("{sequential:?}"),
            format!("{parallel:?}"),
            "parallel sweep must be byte-identical to sequential"
        );
    }

    #[test]
    fn empty_latency_grid_uses_each_machines_own_latency() {
        let results = Sweep::new()
            .machines([Machine::reference(42), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .run();
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.points[0].latency, 42);
        assert_eq!(results.points[1].latency, 0); // IDEAL has no memory
    }

    fn memory_sweep(threads: usize) -> SweepResults {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1)])
            .benchmark(Benchmark::Trfd)
            .latencies([1, 30])
            .memory_models([
                MemoryModelKind::Flat,
                MemoryModelKind::Banked {
                    banks: 8,
                    bank_busy: 8,
                },
                MemoryModelKind::MultiPort { ports: 2 },
            ])
            .scale(Scale::Quick)
            .threads(threads)
            .run()
    }

    #[test]
    fn memory_model_grid_is_complete_and_ordered() {
        let results = memory_sweep(1);
        assert_eq!(results.points.len(), 2 * 2 * 3);
        assert_eq!(results.memory_models().len(), 3);
        for memory in results.memory_models() {
            assert_eq!(results.of_memory(memory).count(), 4);
        }
        // Latency-major over memory models: within one latency, all flat
        // points precede all banked points.
        let flat_positions: Vec<usize> = results
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.memory == MemoryModelKind::Flat && p.latency == 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flat_positions, vec![0, 1]);
        // The machine actually ran with the stamped backend.
        for p in &results.points {
            assert_eq!(p.machine.memory_model(), Some(p.memory));
        }
    }

    #[test]
    fn memory_model_sweeps_are_thread_count_independent() {
        assert_eq!(memory_sweep(1), memory_sweep(4));
    }

    #[test]
    fn memory_models_change_timing_but_not_work() {
        let results = memory_sweep(1);
        let flat = results
            .of_memory(MemoryModelKind::Flat)
            .find(|p| p.label == "REF" && p.latency == 30)
            .unwrap();
        let banked = results
            .of_memory(MemoryModelKind::Banked {
                banks: 8,
                bank_busy: 8,
            })
            .find(|p| p.label == "REF" && p.latency == 30)
            .unwrap();
        // Bank conflicts can only slow a run down, and never change the
        // instructions executed or the words moved.
        assert!(banked.result.cycles >= flat.result.cycles);
        assert_eq!(banked.result.insts, flat.result.insts);
        assert_eq!(banked.result.traffic, flat.result.traffic);
    }

    #[test]
    fn empty_memory_grid_uses_each_machines_own_model() {
        let banked = MemoryModelKind::Banked {
            banks: 8,
            bank_busy: 8,
        };
        let results = Sweep::new()
            .machines([Machine::dva(1).with_memory_model(banked), Machine::ideal()])
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .run();
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.points[0].memory, banked);
        assert_eq!(results.points[1].memory, MemoryModelKind::Flat); // IDEAL has no memory
    }

    #[test]
    fn custom_programs_ride_alongside_benchmarks() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        // `with_name` shares the benchmark's instruction storage — adding
        // a derived program to a sweep copies no instructions.
        let custom = program.with_name("custom");
        assert_eq!(custom.insts().as_ptr(), program.insts().as_ptr());
        let results = Sweep::new()
            .machine(Machine::dva(1))
            .program(custom)
            .latencies([1])
            .run();
        assert_eq!(results.points.len(), 1);
        assert_eq!(results.points[0].program, "custom");
        assert_eq!(results.points[0].benchmark, None);
        // The derived points match the benchmark's own simulation.
        assert_eq!(results.points[0].result, Machine::dva(1).simulate(&program));
    }
}
