//! The unified simulation result.

use dva_core::{DvaResult, IdealBound};
use dva_isa::{Cycle, Program};
use dva_metrics::{Diag, Histogram, StateTracker, Traffic};
use dva_ref::RefResult;

/// Measurements every machine reports, plus machine-specific detail.
///
/// The common fields unify [`RefResult`] and [`DvaResult`]; quantities
/// that only one machine produces (the AVDQ histogram, bypass counters,
/// the IDEAL resource split) live behind [`MachineDetail`] and the typed
/// accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total execution time in cycles (for IDEAL: the lower bound).
    pub cycles: Cycle,
    /// Architectural instructions executed (for IDEAL: trace length).
    pub insts: u64,
    /// Per-cycle occupancy of the (FU2, FU1, LD) state tuple. Empty for
    /// IDEAL, which models resources without a timeline.
    pub states: StateTracker,
    /// Memory traffic counters. Zero for IDEAL.
    pub traffic: Traffic,
    /// Address bus utilization over the run (0..=1; 0 for IDEAL).
    pub bus_utilization: f64,
    /// Scalar cache hit rate (0..=1; 0 for IDEAL).
    pub cache_hit_rate: f64,
    /// Front-end stall cycles: dispatch stalls on REF, fetch-processor
    /// stalls on the DVA, zero for IDEAL.
    pub stall_cycles: u64,
    /// Simulator loop iterations actually executed: equal to `cycles`
    /// under naive stepping, (much) smaller under fast-forward, zero for
    /// IDEAL. A [`Diag`] — excluded from equality and `Debug` so that the
    /// stepping strategy never affects result identity.
    pub ticks_executed: Diag<u64>,
    /// Whatever only this machine measures.
    pub detail: MachineDetail,
}

/// Machine-specific measurements carried inside a [`SimResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum MachineDetail {
    /// The reference machine reports nothing beyond the common fields.
    Reference,
    /// Decoupled-machine extras (queues, bypass, drain stalls).
    Decoupled {
        /// Busy-slot histogram of the vector load data queue (Figure 6).
        avdq_occupancy: Histogram,
        /// Vector loads fully satisfied by the VADQ→AVDQ bypass.
        bypassed_loads: u64,
        /// Cycles the address processor spent draining stores to resolve
        /// memory hazards.
        drain_stall_cycles: u64,
        /// Highest VPIQ occupancy observed.
        max_vpiq: usize,
        /// Highest APIQ occupancy observed.
        max_apiq: usize,
        /// Highest AVDQ busy-slot count observed.
        max_avdq: usize,
    },
    /// The IDEAL bound's per-resource operation totals.
    Ideal(IdealBound),
}

impl SimResult {
    /// Cycles spent in the all-idle `( , , )` state.
    pub fn idle_cycles(&self) -> Cycle {
        self.states.idle_cycles()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Speedup of this result over `baseline` (baseline cycles / ours).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        dva_metrics::speedup(baseline.cycles, self.cycles)
    }

    /// The AVDQ busy-slot histogram, if this machine has the queue.
    pub fn avdq_occupancy(&self) -> Option<&Histogram> {
        match &self.detail {
            MachineDetail::Decoupled { avdq_occupancy, .. } => Some(avdq_occupancy),
            _ => None,
        }
    }

    /// Vector loads served by the bypass unit (zero on machines without
    /// one).
    pub fn bypassed_loads(&self) -> u64 {
        match &self.detail {
            MachineDetail::Decoupled { bypassed_loads, .. } => *bypassed_loads,
            _ => 0,
        }
    }

    /// Cycles the address processor spent draining stores (zero on other
    /// machines).
    pub fn drain_stall_cycles(&self) -> u64 {
        match &self.detail {
            MachineDetail::Decoupled {
                drain_stall_cycles, ..
            } => *drain_stall_cycles,
            _ => 0,
        }
    }

    /// Highest AVDQ busy-slot count observed, if the machine has the
    /// queue.
    pub fn max_avdq(&self) -> Option<usize> {
        match &self.detail {
            MachineDetail::Decoupled { max_avdq, .. } => Some(*max_avdq),
            _ => None,
        }
    }

    /// The IDEAL per-resource totals, if this result is the bound.
    pub fn ideal_bound(&self) -> Option<&IdealBound> {
        match &self.detail {
            MachineDetail::Ideal(bound) => Some(bound),
            _ => None,
        }
    }

    /// Builds the IDEAL pseudo-result for `program`.
    pub(crate) fn from_ideal(bound: IdealBound, program: &Program) -> SimResult {
        SimResult {
            cycles: bound.cycles(),
            insts: program.len() as u64,
            states: StateTracker::new(),
            traffic: Traffic::default(),
            bus_utilization: 0.0,
            cache_hit_rate: 0.0,
            stall_cycles: 0,
            ticks_executed: Diag(0),
            detail: MachineDetail::Ideal(bound),
        }
    }
}

impl From<RefResult> for SimResult {
    fn from(r: RefResult) -> SimResult {
        SimResult {
            cycles: r.cycles,
            insts: r.insts,
            states: r.states,
            traffic: r.traffic,
            bus_utilization: r.bus_utilization,
            cache_hit_rate: r.cache_hit_rate,
            stall_cycles: r.dispatch_stalls,
            ticks_executed: r.ticks_executed,
            detail: MachineDetail::Reference,
        }
    }
}

impl From<DvaResult> for SimResult {
    fn from(d: DvaResult) -> SimResult {
        SimResult {
            cycles: d.cycles,
            insts: d.insts,
            states: d.states,
            traffic: d.traffic,
            bus_utilization: d.bus_utilization,
            cache_hit_rate: d.cache_hit_rate,
            stall_cycles: d.fp_stalls,
            ticks_executed: d.ticks_executed,
            detail: MachineDetail::Decoupled {
                avdq_occupancy: d.avdq_occupancy,
                bypassed_loads: d.bypassed_loads,
                drain_stall_cycles: d.drain_stall_cycles,
                max_vpiq: d.max_vpiq,
                max_apiq: d.max_apiq,
                max_avdq: d.max_avdq,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn detail_accessors_match_machine_kind() {
        let program = Benchmark::Dyfesm.program(Scale::Quick);
        let r = Machine::reference(1).simulate(&program);
        assert!(r.avdq_occupancy().is_none());
        assert_eq!(r.bypassed_loads(), 0);
        assert!(r.ideal_bound().is_none());

        let d = Machine::byp(1, 256, 16).simulate(&program);
        assert!(d.avdq_occupancy().is_some());
        assert!(d.max_avdq().is_some());

        let i = Machine::ideal().simulate(&program);
        assert!(i.ideal_bound().is_some());
        assert_eq!(i.idle_cycles(), 0);
        assert_eq!(i.cycles, i.ideal_bound().unwrap().cycles());
    }

    #[test]
    fn common_fields_survive_the_conversion() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        let d = Machine::dva(30).simulate(&program);
        assert_eq!(d.states.total_cycles(), d.cycles);
        assert!(d.ipc() > 0.0);
        let r = Machine::reference(30).simulate(&program);
        assert!(r.speedup_over(&d) <= 1.0 + 1e-9 || r.cycles >= d.cycles);
    }
}
