//! The unified simulation result.

use dva_core::{DvaResult, IdealBound};
use dva_engine::ResultCore;
use dva_isa::{Cycle, Program};
use dva_metrics::Histogram;
use dva_ref::RefResult;
use std::fmt;
use std::ops::Deref;

/// Measurements every machine reports, plus machine-specific detail.
///
/// The common measurements are the shared [`ResultCore`] assembled by
/// the `dva-engine` driver — every machine (REF, DVA, IDEAL, custom)
/// produces the same core, so converting a machine result into a
/// `SimResult` moves the core instead of copying fields. The core's
/// fields and methods are reachable directly through `Deref` —
/// `result.cycles`, `result.ipc()`. Quantities that only one machine
/// produces (the AVDQ histogram, bypass counters, the IDEAL resource
/// split) live behind [`MachineDetail`] and the typed accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The measurements every machine shares.
    pub core: ResultCore,
    /// Whatever only this machine measures.
    pub detail: MachineDetail,
}

/// Machine-specific measurements carried inside a [`SimResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum MachineDetail {
    /// The reference machine reports nothing beyond the common core.
    Reference,
    /// Decoupled-machine extras (queues, bypass, drain stalls).
    Decoupled {
        /// Busy-slot histogram of the vector load data queue (Figure 6).
        avdq_occupancy: Histogram,
        /// Vector loads fully satisfied by the VADQ→AVDQ bypass.
        bypassed_loads: u64,
        /// Cycles the address processor spent draining stores to resolve
        /// memory hazards.
        drain_stall_cycles: u64,
        /// Highest VPIQ occupancy observed.
        max_vpiq: usize,
        /// Highest APIQ occupancy observed.
        max_apiq: usize,
        /// Highest AVDQ busy-slot count observed.
        max_avdq: usize,
    },
    /// The IDEAL bound's per-resource operation totals.
    Ideal(IdealBound),
    /// A [`Machine::custom`](crate::Machine::custom) processor's extras:
    /// the occupancy histogram its observers tracked, if any.
    Custom {
        /// Per-cycle occupancy histogram, when the custom machine's
        /// observers carried one.
        occupancy: Option<Histogram>,
    },
}

impl SimResult {
    /// Speedup of this result over `baseline` (baseline cycles / ours).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        dva_metrics::speedup(baseline.cycles, self.cycles)
    }

    /// The AVDQ busy-slot histogram, if this machine has the queue.
    pub fn avdq_occupancy(&self) -> Option<&Histogram> {
        match &self.detail {
            MachineDetail::Decoupled { avdq_occupancy, .. } => Some(avdq_occupancy),
            _ => None,
        }
    }

    /// The per-cycle occupancy histogram this machine tracked, whichever
    /// kind of machine it is: the DVA's AVDQ histogram, or whatever a
    /// custom machine's observers recorded.
    pub fn occupancy_histogram(&self) -> Option<&Histogram> {
        match &self.detail {
            MachineDetail::Decoupled { avdq_occupancy, .. } => Some(avdq_occupancy),
            MachineDetail::Custom { occupancy } => occupancy.as_ref(),
            _ => None,
        }
    }

    /// Vector loads served by the bypass unit (zero on machines without
    /// one).
    pub fn bypassed_loads(&self) -> u64 {
        match &self.detail {
            MachineDetail::Decoupled { bypassed_loads, .. } => *bypassed_loads,
            _ => 0,
        }
    }

    /// Cycles the address processor spent draining stores (zero on other
    /// machines).
    pub fn drain_stall_cycles(&self) -> u64 {
        match &self.detail {
            MachineDetail::Decoupled {
                drain_stall_cycles, ..
            } => *drain_stall_cycles,
            _ => 0,
        }
    }

    /// Highest AVDQ busy-slot count observed, if the machine has the
    /// queue.
    pub fn max_avdq(&self) -> Option<usize> {
        match &self.detail {
            MachineDetail::Decoupled { max_avdq, .. } => Some(*max_avdq),
            _ => None,
        }
    }

    /// The IDEAL per-resource totals, if this result is the bound.
    pub fn ideal_bound(&self) -> Option<&IdealBound> {
        match &self.detail {
            MachineDetail::Ideal(bound) => Some(bound),
            _ => None,
        }
    }

    /// Builds the IDEAL pseudo-result for `program`: the bound has no
    /// timeline, so its core is the shared "untimed" core (cycles +
    /// instruction count, everything else empty).
    pub(crate) fn from_ideal(bound: IdealBound, program: &Program) -> SimResult {
        SimResult {
            core: ResultCore::untimed(bound.cycles(), program.len() as u64),
            detail: MachineDetail::Ideal(bound),
        }
    }

    /// Wraps the core a custom processor's driver run assembled.
    pub(crate) fn from_custom(core: ResultCore, occupancy: Option<Histogram>) -> SimResult {
        SimResult {
            core,
            detail: MachineDetail::Custom { occupancy },
        }
    }

    /// Cycles spent in the all-idle `( , , )` state.
    ///
    /// (Also available through `Deref` to [`ResultCore`]; kept inherent
    /// so existing callers and docs keep working unchanged.)
    pub fn idle_cycles(&self) -> Cycle {
        self.core.idle_cycles()
    }
}

impl Deref for SimResult {
    type Target = ResultCore;

    fn deref(&self) -> &ResultCore {
        &self.core
    }
}

/// The human-readable summary experiment binaries print: cycles and
/// IPC, traffic, the address-port utilization (per port when the memory
/// has several), and the scalar-cache hit rates for loads and stores.
///
/// ```
/// use dva_memory::MemoryModelKind;
/// use dva_sim_api::Machine;
/// use dva_workloads::{Benchmark, Scale};
///
/// let program = Benchmark::Trfd.program(Scale::Quick);
/// let machine = Machine::dva(30).with_memory_model(MemoryModelKind::MultiPort { ports: 2 });
/// let summary = machine.simulate(&program).to_string();
/// assert!(summary.contains("ports:"));
/// assert!(summary.contains("p0 ")); // per-port utilization
/// assert!(summary.contains("p1 "));
/// assert!(summary.contains("cache:"));
/// ```
impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles, {} insts (IPC {:.2}), {} front-end stall cycles",
            self.cycles,
            self.insts,
            self.ipc(),
            self.stall_cycles,
        )?;
        writeln!(f, "traffic: {}", self.traffic)?;
        match self.port_utilization.as_slice() {
            [] => writeln!(f, "ports: none")?,
            [only] => writeln!(f, "ports: {:.1}% busy", 100.0 * only)?,
            ports => {
                write!(f, "ports:")?;
                for (i, util) in ports.iter().enumerate() {
                    write!(f, " p{i} {:.1}%", 100.0 * util)?;
                }
                writeln!(f, " (mean {:.1}%)", 100.0 * self.bus_utilization)?;
            }
        }
        write!(f, "cache: {}", self.core.cache)
    }
}

impl From<RefResult> for SimResult {
    fn from(r: RefResult) -> SimResult {
        SimResult {
            core: r.core,
            detail: MachineDetail::Reference,
        }
    }
}

impl From<DvaResult> for SimResult {
    fn from(d: DvaResult) -> SimResult {
        SimResult {
            core: d.core,
            detail: MachineDetail::Decoupled {
                avdq_occupancy: d.avdq_occupancy,
                bypassed_loads: d.bypassed_loads,
                drain_stall_cycles: d.drain_stall_cycles,
                max_vpiq: d.max_vpiq,
                max_apiq: d.max_apiq,
                max_avdq: d.max_avdq,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Machine;
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn detail_accessors_match_machine_kind() {
        let program = Benchmark::Dyfesm.program(Scale::Quick);
        let r = Machine::reference(1).simulate(&program);
        assert!(r.avdq_occupancy().is_none());
        assert_eq!(r.bypassed_loads(), 0);
        assert!(r.ideal_bound().is_none());

        let d = Machine::byp(1, 256, 16).simulate(&program);
        assert!(d.avdq_occupancy().is_some());
        assert!(d.occupancy_histogram().is_some());
        assert!(d.max_avdq().is_some());

        let i = Machine::ideal().simulate(&program);
        assert!(i.ideal_bound().is_some());
        assert_eq!(i.idle_cycles(), 0);
        assert_eq!(i.cycles, i.ideal_bound().unwrap().cycles());
    }

    #[test]
    fn common_fields_survive_the_conversion() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        let d = Machine::dva(30).simulate(&program);
        assert_eq!(d.states.total_cycles(), d.cycles);
        assert!(d.ipc() > 0.0);
        let r = Machine::reference(30).simulate(&program);
        assert!(r.speedup_over(&d) <= 1.0 + 1e-9 || r.cycles >= d.cycles);
    }
}
