//! Streaming, work-stealing execution of sweep grids.
//!
//! [`Sweep::run`](crate::Sweep::run) used to partition the grid up front;
//! this module replaces that with a work-stealing scheduler that also
//! *streams*: each worker owns a deque seeded with a contiguous chunk of
//! the grid (neighbouring points share a program, so its compiled form
//! stays warm on one worker), pops its own work from the front, and
//! steals from the back of the busiest other deque when it runs dry.
//! Completed points flow over a channel to the consuming thread, which
//! holds them back until every earlier grid position has arrived — so the
//! stream yields in deterministic grid order no matter how the workers
//! interleave, and collecting it is byte-identical to a sequential run.

use crate::cancel::CancelToken;
use crate::fault::{PointError, PointErrorKind};
use crate::prepare::{PreparedProgram, Runners};
use crate::sweep::SweepPoint;
use crate::{Machine, SimResult};
use dva_core::DvaSim;
use dva_engine::SimError;
use dva_isa::Program;
use dva_memory::MemoryModelKind;
use dva_ref::RefSim;
use dva_testutil::failpoint;
use dva_workloads::Benchmark;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// One coordinate of a sweep grid, produced by
/// [`Sweep::grid`](crate::Sweep::grid): everything needed to measure the
/// point, plus its position in the grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Position of this point in the grid's deterministic order.
    pub index: usize,
    /// The benchmark, when the program came from the benchmark suite.
    pub benchmark: Option<Benchmark>,
    /// The program to run (shares the session's instruction storage).
    pub program: Program,
    /// The machine, already stamped with this point's latency and model.
    pub machine: Machine,
    /// The latency coordinate (the machine's own when the grid had none).
    pub latency: u64,
    /// The memory-model coordinate (the machine's own when the grid had
    /// none).
    pub memory: MemoryModelKind,
}

/// A spec bound to its shared translate-once program.
pub(crate) struct Entry {
    pub(crate) spec: PointSpec,
    pub(crate) prepared: Arc<PreparedProgram>,
}

impl Entry {
    /// The detail string identifying this point at the `sim.point`
    /// failpoint — the filter key chaos tests select one grid point by.
    /// Deliberately coordinate-based (not index-based) so a spec fails
    /// identically whether it runs in a full grid or a resubmitted
    /// subset.
    fn fail_detail(&self) -> String {
        format!(
            "{}|{}|L{}",
            self.spec.machine.label(),
            self.prepared.program().name(),
            self.spec.latency
        )
    }

    /// The [`PointError`] carrying this point's grid coordinates.
    fn fail(&self, kind: PointErrorKind, message: String) -> PointError {
        PointError {
            index: self.spec.index,
            label: self.spec.machine.label(),
            program: self.prepared.program().name().to_string(),
            latency: self.spec.latency,
            memory: self.spec.memory,
            kind,
            message,
        }
    }

    /// Measures the point on its own, with full fault isolation: a
    /// tripped deadlock watchdog or a panic anywhere in the machine
    /// model (or an armed `sim.point` failpoint) comes back as a typed
    /// [`PointError`] instead of unwinding the worker. After a caught
    /// panic the engine pool is rebuilt — a panic may have left a pooled
    /// engine in a state its reset contract no longer covers. Batched
    /// execution goes through [`execute_job`] instead; both funnel into
    /// [`Entry::point_from`], so every execution path (sequential,
    /// streamed, stolen, batched) produces identical bytes.
    pub(crate) fn try_measure(
        &self,
        fast_forward: bool,
        runners: &mut Runners,
    ) -> Result<SweepPoint, PointError> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            failpoint::hit("sim.point", || self.fail_detail()).unwrap_or_else(|e| panic!("{e}"));
            self.spec
                .machine
                .try_simulate_prepared(&self.prepared, fast_forward, runners)
        }));
        match outcome {
            Ok(Ok(result)) => Ok(self.point_from(result)),
            Ok(Err(deadlock)) => Err(self.fail(PointErrorKind::Deadlock, deadlock.to_string())),
            Err(payload) => {
                *runners = Runners::new();
                Err(self.fail(PointErrorKind::Panic, panic_message(payload.as_ref())))
            }
        }
    }

    /// Wraps a measured [`SimResult`] in this point's grid coordinates —
    /// the one place a [`SweepPoint`] is built.
    pub(crate) fn point_from(&self, result: SimResult) -> SweepPoint {
        SweepPoint {
            machine: self.spec.machine,
            label: self.spec.machine.label(),
            benchmark: self.spec.benchmark,
            program: self.prepared.program().name().to_string(),
            latency: self.spec.latency,
            memory: self.spec.memory,
            result,
        }
    }
}

/// One schedulable unit of sweep work: the entry positions it measures.
/// A multi-position job is a lane batch — entries of one program and one
/// machine family that a single lockstep engine pass measures together.
pub(crate) struct Job {
    pub(crate) positions: Vec<usize>,
}

/// The machine families whose engines support lane batching. IDEAL is a
/// closed-form bound (nothing to batch) and custom machines own their
/// processors, so both stay singleton jobs.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum Family {
    Dva,
    Ref,
}

fn family(machine: &Machine) -> Option<Family> {
    match machine {
        Machine::Dva(_) => Some(Family::Dva),
        Machine::Ref(_) => Some(Family::Ref),
        Machine::Ideal | Machine::Custom(_) => None,
    }
}

/// Groups entries into [`Job`]s: points that share a prepared program
/// and a machine family — across the latency, memory-model and
/// machine-configuration axes — batch into lockstep lanes, capped at
/// `lanes` per job; everything else stays a singleton. Jobs are ordered
/// by their first grid position, and positions within a job keep grid
/// order, so execution remains deterministic.
pub(crate) fn plan_jobs(entries: &[Entry], lanes: usize) -> Vec<Job> {
    let lanes = lanes.max(1);
    let mut jobs: Vec<Job> = Vec::new();
    // The open (not yet full) job per batchable group, keyed by the
    // prepared program's identity and the machine family.
    let mut open: Vec<((usize, Family), usize)> = Vec::new();
    for (pos, entry) in entries.iter().enumerate() {
        let Some(family) = family(&entry.spec.machine).filter(|_| lanes > 1) else {
            jobs.push(Job {
                positions: vec![pos],
            });
            continue;
        };
        let key = (Arc::as_ptr(&entry.prepared) as usize, family);
        match open.iter().position(|(k, _)| *k == key) {
            Some(slot) if jobs[open[slot].1].positions.len() < lanes => {
                let job = open[slot].1;
                jobs[job].positions.push(pos);
            }
            found => {
                let job = jobs.len();
                jobs.push(Job {
                    positions: vec![pos],
                });
                match found {
                    // The previous chunk filled up: start the next one.
                    Some(slot) => open[slot].1 = job,
                    None => open.push((key, job)),
                }
            }
        }
    }
    jobs
}

/// Measures every position of one job, reporting each completed point —
/// or its isolated [`PointError`] — through `emit`. Singleton jobs go
/// through [`Entry::try_measure`]; multi-position jobs run as one
/// lockstep lane batch on the family's engine pool — byte-identical
/// either way (the batched driver executes each lane's exact sequential
/// schedule).
///
/// Fault isolation for a batch is two-stage: a deadlock or panic
/// anywhere in a lockstep pass abandons the whole batch, then every
/// position re-runs as an isolated singleton. The poisoned point fails
/// again deterministically and becomes its own [`PointError`]; the
/// healthy lanes succeed with bytes identical to the batched pass
/// (the byte-identity invariant between batched and sequential runs is
/// exactly what makes this salvage correct).
pub(crate) fn execute_job(
    entries: &[Entry],
    positions: &[usize],
    fast_forward: bool,
    runners: &mut Runners,
    mut emit: impl FnMut(usize, Result<SweepPoint, PointError>),
) {
    if positions.len() == 1 {
        let pos = positions[0];
        emit(pos, entries[pos].try_measure(fast_forward, runners));
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute_batch(entries, positions, fast_forward, runners)
    }));
    match outcome {
        Ok(Ok(points)) => {
            for (&pos, point) in positions.iter().zip(points) {
                emit(pos, Ok(point));
            }
        }
        Ok(Err(_deadlock)) => {
            // One lane deadlocked; the runner pool resets cleanly on the
            // next arm. Salvage lane by lane.
            for &pos in positions {
                emit(pos, entries[pos].try_measure(fast_forward, runners));
            }
        }
        Err(_panic) => {
            // A panic may have left a pooled engine in a state its reset
            // contract no longer covers: rebuild the pool, then salvage.
            *runners = Runners::new();
            for &pos in positions {
                emit(pos, entries[pos].try_measure(fast_forward, runners));
            }
        }
    }
}

/// One lockstep lane-batch pass over `positions`. The `sim.point`
/// failpoint fires here per position (before the pass starts) so an
/// armed chaos fault poisons the same point at any lane count.
fn execute_batch(
    entries: &[Entry],
    positions: &[usize],
    fast_forward: bool,
    runners: &mut Runners,
) -> Result<Vec<SweepPoint>, SimError> {
    for &pos in positions {
        failpoint::hit("sim.point", || entries[pos].fail_detail())
            .unwrap_or_else(|e| panic!("{e}"));
    }
    let first = &entries[positions[0]];
    match family(&first.spec.machine).expect("multi-position jobs are batchable") {
        Family::Dva => {
            let sims: Vec<DvaSim> = positions
                .iter()
                .map(|&pos| match entries[pos].spec.machine {
                    Machine::Dva(config) => DvaSim::new(config).with_fast_forward(fast_forward),
                    _ => unreachable!("a job never mixes machine families"),
                })
                .collect();
            let results = runners.dva.try_run_batch(&sims, first.prepared.dva())?;
            Ok(positions
                .iter()
                .zip(results)
                .map(|(&pos, result)| entries[pos].point_from(result.into()))
                .collect())
        }
        Family::Ref => {
            let sims: Vec<RefSim> = positions
                .iter()
                .map(|&pos| match entries[pos].spec.machine {
                    Machine::Ref(params) => RefSim::new(params).with_fast_forward(fast_forward),
                    _ => unreachable!("a job never mixes machine families"),
                })
                .collect();
            let results = runners
                .reference
                .try_run_batch(&sims, first.prepared.reference())?;
            Ok(positions
                .iter()
                .zip(results)
                .map(|(&pos, result)| entries[pos].point_from(result.into()))
                .collect())
        }
    }
}

/// Binds each spec to a [`PreparedProgram`], shared between all specs
/// whose programs share instruction storage — the grid pays one
/// translation per program no matter how many points reference it.
pub(crate) fn prepare(specs: Vec<PointSpec>) -> Vec<Entry> {
    let mut seen: Vec<(usize, Arc<PreparedProgram>)> = Vec::new();
    specs
        .into_iter()
        .map(|spec| {
            let key = spec.program.insts().as_ptr() as usize;
            let prepared = match seen.iter().find(|(k, _)| *k == key) {
                Some((_, prepared)) => Arc::clone(prepared),
                None => {
                    let prepared = Arc::new(PreparedProgram::new(&spec.program));
                    seen.push((key, Arc::clone(&prepared)));
                    prepared
                }
            };
            Entry { spec, prepared }
        })
        .collect()
}

/// The scheduler state the workers share.
struct Shared {
    entries: Vec<Entry>,
    /// The planned jobs — singletons and lane batches. Workers claim and
    /// execute whole jobs, so a lane batch is never split across
    /// workers.
    jobs: Vec<Job>,
    /// One deque per worker, holding indices into `jobs`.
    queues: Vec<Mutex<VecDeque<usize>>>,
    fast_forward: bool,
    /// Checked between jobs: a cancelled token stops workers from
    /// claiming further work (points in flight still finish).
    cancel: CancelToken,
}

/// Claims the next job for worker `own`: its own deque's front, else the
/// back of the busiest other deque (stealing the far end takes the work
/// least likely to share a warm program with the victim's current point).
fn next_job(shared: &Shared, own: usize) -> Option<usize> {
    if let Some(pos) = shared.queues[own].lock().unwrap().pop_front() {
        return Some(pos);
    }
    loop {
        let mut victim: Option<(usize, usize)> = None; // (queue length, index)
        for (i, queue) in shared.queues.iter().enumerate() {
            if i == own {
                continue;
            }
            let len = queue.lock().unwrap().len();
            if len > 0 && victim.is_none_or(|(best, _)| len > best) {
                victim = Some((len, i));
            }
        }
        let (_, victim) = victim?;
        // The victim may have drained between the scan and this lock;
        // losing that race just means rescanning.
        if let Some(pos) = shared.queues[victim].lock().unwrap().pop_back() {
            return Some(pos);
        }
    }
}

/// A completed point — or its isolated failure — travelling back to the
/// consumer, ordered by its position in the requested sequence.
struct Sequenced {
    pos: usize,
    index: usize,
    outcome: Result<SweepPoint, PointError>,
}

impl PartialEq for Sequenced {
    fn eq(&self, other: &Sequenced) -> bool {
        self.pos == other.pos
    }
}

impl Eq for Sequenced {}

impl PartialOrd for Sequenced {
    fn partial_cmp(&self, other: &Sequenced) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sequenced {
    fn cmp(&self, other: &Sequenced) -> Ordering {
        self.pos.cmp(&other.pos)
    }
}

/// The engine behind both public stream types: workers, the result
/// channel, and the reorder buffer that restores sequence order.
struct RawStream {
    /// `None` once the stream has finished or been dropped.
    rx: Option<Receiver<Sequenced>>,
    /// Completed points that arrived ahead of their turn (min-heap).
    pending: BinaryHeap<Reverse<Sequenced>>,
    next_pos: usize,
    total: usize,
    workers: Vec<JoinHandle<()>>,
    cancel: CancelToken,
    /// Set once cancellation truncated the stream.
    cancelled: bool,
}

fn spawn(
    entries: Vec<Entry>,
    workers: usize,
    fast_forward: bool,
    lanes: usize,
    cancel: CancelToken,
) -> RawStream {
    let total = entries.len();
    let jobs = plan_jobs(&entries, lanes);
    let workers = workers.clamp(1, jobs.len().max(1));

    // Seed each deque with a contiguous chunk of the job sequence: jobs
    // of one program are adjacent, so each worker starts on as few
    // distinct programs as possible.
    let mut queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let chunk = jobs.len().div_ceil(workers).max(1);
    for job in 0..jobs.len() {
        let owner = (job / chunk).min(workers - 1);
        queues[owner].get_mut().unwrap().push_back(job);
    }

    let shared = Arc::new(Shared {
        entries,
        jobs,
        queues,
        fast_forward,
        cancel: cancel.clone(),
    });
    let (tx, rx) = channel();
    let handles = (0..workers)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut runners = Runners::new();
                'claim: while let Some(job) = next_job(&shared, w) {
                    if shared.cancel.is_cancelled() {
                        break 'claim;
                    }
                    let mut dropped = false;
                    execute_job(
                        &shared.entries,
                        &shared.jobs[job].positions,
                        shared.fast_forward,
                        &mut runners,
                        |pos, outcome| {
                            let sequenced = Sequenced {
                                pos,
                                index: shared.entries[pos].spec.index,
                                outcome,
                            };
                            // A send fails only when the consumer dropped
                            // the stream: stop claiming work and exit.
                            dropped |= tx.send(sequenced).is_err();
                        },
                    );
                    if dropped {
                        break 'claim;
                    }
                }
            })
        })
        .collect();
    RawStream {
        rx: Some(rx),
        pending: BinaryHeap::new(),
        next_pos: 0,
        total,
        workers: handles,
        cancel,
        cancelled: false,
    }
}

impl RawStream {
    fn next_in_order(&mut self) -> Option<(usize, Result<SweepPoint, PointError>)> {
        if self.next_pos >= self.total {
            self.finish();
            return None;
        }
        loop {
            if self
                .pending
                .peek()
                .is_some_and(|Reverse(s)| s.pos == self.next_pos)
            {
                let Reverse(s) = self.pending.pop().expect("peeked");
                self.next_pos += 1;
                if self.next_pos >= self.total {
                    // Exhausting the stream joins the workers, so a
                    // finished iteration implies a quiesced pool.
                    self.finish();
                }
                return Some((s.index, s.outcome));
            }
            let Some(rx) = self.rx.as_ref() else {
                // Cancellation truncated the stream on an earlier call.
                return None;
            };
            match rx.recv() {
                Ok(sequenced) => self.pending.push(Reverse(sequenced)),
                Err(_) => {
                    self.finish();
                    if self.cancel.is_cancelled() {
                        // Workers stopped claiming jobs on request; the
                        // stream truncates at the last in-order point.
                        self.cancelled = true;
                        self.total = self.next_pos;
                        return None;
                    }
                    // Every worker hung up with points still missing and
                    // nobody asked them to stop: an executor bug (point
                    // faults are isolated, so workers cannot die early).
                    unreachable!("sweep workers exited without completing the grid");
                }
            }
        }
    }

    fn cancelled(&self) -> bool {
        self.cancelled || self.cancel.is_cancelled()
    }

    fn remaining(&self) -> usize {
        self.total - self.next_pos
    }

    fn finish(&mut self) {
        self.rx.take();
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for RawStream {
    fn drop(&mut self) {
        // Closing the channel makes every pending send fail, so workers
        // abandon the rest of the grid; join them without re-raising (a
        // worker panic mid-drop must not abort an unwinding thread).
        self.rx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A running sweep yielding points in deterministic grid order as they
/// complete. Created by [`Sweep::run_streaming`](crate::Sweep::run_streaming).
///
/// A failed point — an isolated panic or deadlock — re-raises here as a
/// panic carrying the [`PointError`] message, keeping this iterator's
/// all-or-nothing contract; consumers that must survive poisoned points
/// use [`IndexedSweepStream::next_outcome`] instead. A cancelled sweep
/// (see [`Sweep::cancel_handle`](crate::Sweep::cancel_handle)) truncates:
/// the iterator ends early at the last in-order point, which is the one
/// deliberate exception to the [`ExactSizeIterator`] length promise.
pub struct SweepStream {
    inner: RawStream,
}

impl Iterator for SweepStream {
    type Item = SweepPoint;

    fn next(&mut self) -> Option<SweepPoint> {
        self.inner
            .next_in_order()
            .map(|(_, outcome)| outcome.unwrap_or_else(|e| panic!("{e}")))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.inner.remaining(), Some(self.inner.remaining()))
    }
}

impl ExactSizeIterator for SweepStream {}

/// A running subset sweep yielding `(grid_index, point)` pairs in the
/// order the specs were submitted. Created by
/// [`Sweep::run_subset_streaming`](crate::Sweep::run_subset_streaming).
///
/// [`Iterator::next`] re-raises a failed point as a panic, like
/// [`SweepStream`]; fault-tolerant consumers poll
/// [`next_outcome`](IndexedSweepStream::next_outcome) instead and
/// receive each failure as a typed [`PointError`] alongside the healthy
/// points.
pub struct IndexedSweepStream {
    inner: RawStream,
}

impl IndexedSweepStream {
    /// The next `(grid_index, outcome)` pair in submission order: a
    /// measured point, or the typed [`PointError`] that poisoned it.
    /// `None` once the subset is exhausted — or once a cancelled token
    /// truncated the stream (see
    /// [`cancelled`](IndexedSweepStream::cancelled)).
    pub fn next_outcome(&mut self) -> Option<(usize, Result<SweepPoint, PointError>)> {
        self.inner.next_in_order()
    }

    /// Whether this stream's sweep was cancelled (explicitly or by
    /// deadline); a cancelled stream ends early.
    pub fn cancelled(&self) -> bool {
        self.inner.cancelled()
    }
}

impl Iterator for IndexedSweepStream {
    type Item = (usize, SweepPoint);

    fn next(&mut self) -> Option<(usize, SweepPoint)> {
        self.next_outcome()
            .map(|(index, outcome)| (index, outcome.unwrap_or_else(|e| panic!("{e}"))))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.inner.remaining(), Some(self.inner.remaining()))
    }
}

impl ExactSizeIterator for IndexedSweepStream {}

pub(crate) fn stream_all(
    entries: Vec<Entry>,
    workers: usize,
    fast_forward: bool,
    lanes: usize,
    cancel: CancelToken,
) -> SweepStream {
    SweepStream {
        inner: spawn(entries, workers, fast_forward, lanes, cancel),
    }
}

pub(crate) fn stream_indexed(
    entries: Vec<Entry>,
    workers: usize,
    fast_forward: bool,
    lanes: usize,
    cancel: CancelToken,
) -> IndexedSweepStream {
    // Reindex to submission order: the reorder buffer sequences by
    // position in `entries`, while each yielded pair keeps the spec's own
    // grid index for the caller's bookkeeping.
    IndexedSweepStream {
        inner: spawn(entries, workers, fast_forward, lanes, cancel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sweep;
    use dva_workloads::Scale;

    fn sweep(threads: usize) -> Sweep {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies([1, 30])
            .scale(Scale::Quick)
            .threads(threads)
    }

    #[test]
    fn streaming_matches_run_for_every_thread_count() {
        let reference = sweep(1).run();
        for threads in [1, 2, 3, 8] {
            let streamed: Vec<_> = sweep(threads).run_streaming().collect();
            assert_eq!(
                streamed, reference.points,
                "streamed points must be byte-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn grid_enumerates_what_run_measures() {
        let sweep = sweep(1);
        let specs = sweep.grid();
        let results = sweep.run();
        assert_eq!(specs.len(), results.points.len());
        for (spec, point) in specs.iter().zip(&results.points) {
            assert_eq!(spec.index, point_index(&results, point));
            assert_eq!(spec.machine, point.machine);
            assert_eq!(spec.latency, point.latency);
            assert_eq!(spec.memory, point.memory);
            assert_eq!(spec.program.name(), point.program);
        }
        // All points of one benchmark share instruction storage.
        assert_eq!(
            specs[0].program.insts().as_ptr(),
            specs[1].program.insts().as_ptr()
        );
    }

    fn point_index(results: &crate::SweepResults, point: &SweepPoint) -> usize {
        results.points.iter().position(|p| p == point).unwrap()
    }

    #[test]
    fn subsets_stream_in_submission_order_with_grid_indices() {
        let session = sweep(4);
        let full = session.run();
        // Every third point, submitted in reverse grid order.
        let mut subset: Vec<PointSpec> = session.grid().into_iter().step_by(3).collect();
        subset.reverse();
        let expected: Vec<usize> = subset.iter().map(|s| s.index).collect();
        let streamed: Vec<(usize, SweepPoint)> = session.run_subset_streaming(subset).collect();
        let order: Vec<usize> = streamed.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, expected, "pairs arrive in submission order");
        for (index, point) in streamed {
            assert_eq!(point, full.points[index], "byte-identical to the full run");
        }
    }

    #[test]
    fn dropping_a_stream_cancels_the_remaining_work() {
        let mut stream = sweep(2).run_streaming();
        let first = stream.next().unwrap();
        assert_eq!(first.label, "REF");
        drop(stream); // must not hang or leak workers
    }

    #[test]
    fn empty_sessions_stream_nothing() {
        let mut stream = Sweep::new().run_streaming();
        assert_eq!(stream.size_hint(), (0, Some(0)));
        assert!(stream.next().is_none());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_to_the_consumer() {
        fn explode(_: &Program) -> crate::CustomSim<'_> {
            panic!("boom")
        }
        let results: Vec<_> = Sweep::new()
            .machine(Machine::custom("BOOM", explode))
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .threads(2)
            .run_streaming()
            .collect();
        drop(results);
    }

    /// Fault isolation: one poisoned point becomes a typed
    /// [`PointError`] through [`IndexedSweepStream::next_outcome`],
    /// while every other point of the grid still arrives — byte-
    /// identical to a clean run.
    #[test]
    fn a_poisoned_point_is_isolated_as_a_typed_error() {
        fn selective(program: &Program) -> crate::CustomSim<'_> {
            if program.name() == "DYFESM" {
                panic!("poisoned point");
            }
            // Panic-free points use a trivial one-tick processor.
            struct Idle {
                done: bool,
            }
            impl crate::Processor for Idle {
                fn step(&mut self, _now: dva_isa::Cycle) -> crate::Progress {
                    self.done = true;
                    crate::Progress::Advanced
                }
                fn is_done(&self) -> bool {
                    self.done
                }
                fn next_event_after(&self, _now: dva_isa::Cycle) -> Option<dva_isa::Cycle> {
                    None
                }
                fn quiesce_at(&self) -> dva_isa::Cycle {
                    1
                }
                fn sample(&self, _now: dva_isa::Cycle, obs: &mut crate::Observers) {
                    obs.record_state(crate::UnitState::empty());
                }
            }
            crate::CustomSim {
                processor: Box::new(Idle { done: false }),
                observers: crate::Observers::new(),
            }
        }
        let session = Sweep::new()
            .machine(Machine::custom("SEL", selective))
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm, Benchmark::Flo52])
            .scale(Scale::Quick)
            .threads(2);
        let mut stream = session.run_subset_streaming(session.grid());
        let mut errors = Vec::new();
        let mut points = Vec::new();
        while let Some((index, outcome)) = stream.next_outcome() {
            match outcome {
                Ok(point) => points.push((index, point)),
                Err(error) => errors.push(error),
            }
        }
        assert_eq!(points.len(), 2);
        assert_eq!(errors.len(), 1);
        let error = &errors[0];
        assert_eq!(error.kind, PointErrorKind::Panic);
        assert_eq!(error.program, "DYFESM");
        assert!(error.message.contains("poisoned point"), "{error}");
        assert!(!stream.cancelled());
    }

    /// An engine deadlock surfaces as `PointErrorKind::Deadlock`
    /// carrying the watchdog's structured diagnosis.
    #[test]
    fn a_deadlocked_point_reports_the_watchdog_diagnosis() {
        fn stuck(_: &Program) -> crate::CustomSim<'_> {
            struct Stuck;
            impl crate::Processor for Stuck {
                fn step(&mut self, _now: dva_isa::Cycle) -> crate::Progress {
                    crate::Progress::Stalled
                }
                fn is_done(&self) -> bool {
                    false
                }
                fn next_event_after(&self, _now: dva_isa::Cycle) -> Option<dva_isa::Cycle> {
                    None
                }
                fn quiesce_at(&self) -> dva_isa::Cycle {
                    0
                }
                fn sample(&self, _now: dva_isa::Cycle, obs: &mut crate::Observers) {
                    obs.record_state(crate::UnitState::empty());
                }
                fn deadlock_context(&self, _now: dva_isa::Cycle) -> String {
                    "stuck custom unit".into()
                }
            }
            crate::CustomSim {
                processor: Box::new(Stuck),
                observers: crate::Observers::new(),
            }
        }
        // The watchdog needs WATCHDOG_TICKS no-progress ticks to trip;
        // with next_event_after defaulting to None that happens fast.
        let session = Sweep::new()
            .machine(Machine::custom("STUCK", stuck))
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .threads(1);
        let mut stream = session.run_subset_streaming(session.grid());
        let (_, outcome) = stream.next_outcome().unwrap();
        let error = outcome.unwrap_err();
        assert_eq!(error.kind, PointErrorKind::Deadlock);
        assert!(error.message.contains("engine deadlock"), "{error}");
        assert!(error.message.contains("stuck custom unit"), "{error}");
        assert!(stream.next_outcome().is_none());
    }

    /// A cancelled token stops workers from claiming grid points: the
    /// stream truncates instead of wedging, and reports why.
    #[test]
    fn a_cancelled_token_truncates_the_stream() {
        let token = crate::CancelToken::new();
        token.cancel();
        let session = sweep(2).cancel_token(token);
        let mut stream = session.run_subset_streaming(session.grid());
        let total = session.len();
        let mut yielded = 0;
        while stream.next_outcome().is_some() {
            yielded += 1;
        }
        assert!(stream.cancelled());
        assert!(
            yielded < total,
            "a pre-cancelled sweep must not complete the grid"
        );
    }
}
