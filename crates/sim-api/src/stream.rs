//! Streaming, work-stealing execution of sweep grids.
//!
//! [`Sweep::run`](crate::Sweep::run) used to partition the grid up front;
//! this module replaces that with a work-stealing scheduler that also
//! *streams*: each worker owns a deque seeded with a contiguous chunk of
//! the grid (neighbouring points share a program, so its compiled form
//! stays warm on one worker), pops its own work from the front, and
//! steals from the back of the busiest other deque when it runs dry.
//! Completed points flow over a channel to the consuming thread, which
//! holds them back until every earlier grid position has arrived — so the
//! stream yields in deterministic grid order no matter how the workers
//! interleave, and collecting it is byte-identical to a sequential run.

use crate::prepare::{PreparedProgram, Runners};
use crate::sweep::SweepPoint;
use crate::{Machine, SimResult};
use dva_core::DvaSim;
use dva_isa::Program;
use dva_memory::MemoryModelKind;
use dva_ref::RefSim;
use dva_workloads::Benchmark;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One coordinate of a sweep grid, produced by
/// [`Sweep::grid`](crate::Sweep::grid): everything needed to measure the
/// point, plus its position in the grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Position of this point in the grid's deterministic order.
    pub index: usize,
    /// The benchmark, when the program came from the benchmark suite.
    pub benchmark: Option<Benchmark>,
    /// The program to run (shares the session's instruction storage).
    pub program: Program,
    /// The machine, already stamped with this point's latency and model.
    pub machine: Machine,
    /// The latency coordinate (the machine's own when the grid had none).
    pub latency: u64,
    /// The memory-model coordinate (the machine's own when the grid had
    /// none).
    pub memory: MemoryModelKind,
}

/// A spec bound to its shared translate-once program.
pub(crate) struct Entry {
    pub(crate) spec: PointSpec,
    pub(crate) prepared: Arc<PreparedProgram>,
}

impl Entry {
    /// Measures the point on its own. Batched execution goes through
    /// [`execute_job`] instead; both funnel into [`Entry::point_from`],
    /// so every execution path (sequential, streamed, stolen, batched)
    /// produces identical bytes.
    pub(crate) fn measure(&self, fast_forward: bool, runners: &mut Runners) -> SweepPoint {
        self.point_from(
            self.spec
                .machine
                .simulate_prepared(&self.prepared, fast_forward, runners),
        )
    }

    /// Wraps a measured [`SimResult`] in this point's grid coordinates —
    /// the one place a [`SweepPoint`] is built.
    pub(crate) fn point_from(&self, result: SimResult) -> SweepPoint {
        SweepPoint {
            machine: self.spec.machine,
            label: self.spec.machine.label(),
            benchmark: self.spec.benchmark,
            program: self.prepared.program().name().to_string(),
            latency: self.spec.latency,
            memory: self.spec.memory,
            result,
        }
    }
}

/// One schedulable unit of sweep work: the entry positions it measures.
/// A multi-position job is a lane batch — entries of one program and one
/// machine family that a single lockstep engine pass measures together.
pub(crate) struct Job {
    pub(crate) positions: Vec<usize>,
}

/// The machine families whose engines support lane batching. IDEAL is a
/// closed-form bound (nothing to batch) and custom machines own their
/// processors, so both stay singleton jobs.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum Family {
    Dva,
    Ref,
}

fn family(machine: &Machine) -> Option<Family> {
    match machine {
        Machine::Dva(_) => Some(Family::Dva),
        Machine::Ref(_) => Some(Family::Ref),
        Machine::Ideal | Machine::Custom(_) => None,
    }
}

/// Groups entries into [`Job`]s: points that share a prepared program
/// and a machine family — across the latency, memory-model and
/// machine-configuration axes — batch into lockstep lanes, capped at
/// `lanes` per job; everything else stays a singleton. Jobs are ordered
/// by their first grid position, and positions within a job keep grid
/// order, so execution remains deterministic.
pub(crate) fn plan_jobs(entries: &[Entry], lanes: usize) -> Vec<Job> {
    let lanes = lanes.max(1);
    let mut jobs: Vec<Job> = Vec::new();
    // The open (not yet full) job per batchable group, keyed by the
    // prepared program's identity and the machine family.
    let mut open: Vec<((usize, Family), usize)> = Vec::new();
    for (pos, entry) in entries.iter().enumerate() {
        let Some(family) = family(&entry.spec.machine).filter(|_| lanes > 1) else {
            jobs.push(Job {
                positions: vec![pos],
            });
            continue;
        };
        let key = (Arc::as_ptr(&entry.prepared) as usize, family);
        match open.iter().position(|(k, _)| *k == key) {
            Some(slot) if jobs[open[slot].1].positions.len() < lanes => {
                let job = open[slot].1;
                jobs[job].positions.push(pos);
            }
            found => {
                let job = jobs.len();
                jobs.push(Job {
                    positions: vec![pos],
                });
                match found {
                    // The previous chunk filled up: start the next one.
                    Some(slot) => open[slot].1 = job,
                    None => open.push((key, job)),
                }
            }
        }
    }
    jobs
}

/// Measures every position of one job, reporting each completed point
/// through `emit`. Singleton jobs go through [`Entry::measure`];
/// multi-position jobs run as one lockstep lane batch on the family's
/// engine pool — byte-identical either way (the batched driver executes
/// each lane's exact sequential schedule).
pub(crate) fn execute_job(
    entries: &[Entry],
    positions: &[usize],
    fast_forward: bool,
    runners: &mut Runners,
    mut emit: impl FnMut(usize, SweepPoint),
) {
    if positions.len() == 1 {
        let pos = positions[0];
        emit(pos, entries[pos].measure(fast_forward, runners));
        return;
    }
    let first = &entries[positions[0]];
    match family(&first.spec.machine).expect("multi-position jobs are batchable") {
        Family::Dva => {
            let sims: Vec<DvaSim> = positions
                .iter()
                .map(|&pos| match entries[pos].spec.machine {
                    Machine::Dva(config) => DvaSim::new(config).with_fast_forward(fast_forward),
                    _ => unreachable!("a job never mixes machine families"),
                })
                .collect();
            let results = runners.dva.run_batch(&sims, first.prepared.dva());
            for (&pos, result) in positions.iter().zip(results) {
                emit(pos, entries[pos].point_from(result.into()));
            }
        }
        Family::Ref => {
            let sims: Vec<RefSim> = positions
                .iter()
                .map(|&pos| match entries[pos].spec.machine {
                    Machine::Ref(params) => RefSim::new(params).with_fast_forward(fast_forward),
                    _ => unreachable!("a job never mixes machine families"),
                })
                .collect();
            let results = runners
                .reference
                .run_batch(&sims, first.prepared.reference());
            for (&pos, result) in positions.iter().zip(results) {
                emit(pos, entries[pos].point_from(result.into()));
            }
        }
    }
}

/// Binds each spec to a [`PreparedProgram`], shared between all specs
/// whose programs share instruction storage — the grid pays one
/// translation per program no matter how many points reference it.
pub(crate) fn prepare(specs: Vec<PointSpec>) -> Vec<Entry> {
    let mut seen: Vec<(usize, Arc<PreparedProgram>)> = Vec::new();
    specs
        .into_iter()
        .map(|spec| {
            let key = spec.program.insts().as_ptr() as usize;
            let prepared = match seen.iter().find(|(k, _)| *k == key) {
                Some((_, prepared)) => Arc::clone(prepared),
                None => {
                    let prepared = Arc::new(PreparedProgram::new(&spec.program));
                    seen.push((key, Arc::clone(&prepared)));
                    prepared
                }
            };
            Entry { spec, prepared }
        })
        .collect()
}

/// The scheduler state the workers share.
struct Shared {
    entries: Vec<Entry>,
    /// The planned jobs — singletons and lane batches. Workers claim and
    /// execute whole jobs, so a lane batch is never split across
    /// workers.
    jobs: Vec<Job>,
    /// One deque per worker, holding indices into `jobs`.
    queues: Vec<Mutex<VecDeque<usize>>>,
    fast_forward: bool,
}

/// Claims the next job for worker `own`: its own deque's front, else the
/// back of the busiest other deque (stealing the far end takes the work
/// least likely to share a warm program with the victim's current point).
fn next_job(shared: &Shared, own: usize) -> Option<usize> {
    if let Some(pos) = shared.queues[own].lock().unwrap().pop_front() {
        return Some(pos);
    }
    loop {
        let mut victim: Option<(usize, usize)> = None; // (queue length, index)
        for (i, queue) in shared.queues.iter().enumerate() {
            if i == own {
                continue;
            }
            let len = queue.lock().unwrap().len();
            if len > 0 && victim.is_none_or(|(best, _)| len > best) {
                victim = Some((len, i));
            }
        }
        let (_, victim) = victim?;
        // The victim may have drained between the scan and this lock;
        // losing that race just means rescanning.
        if let Some(pos) = shared.queues[victim].lock().unwrap().pop_back() {
            return Some(pos);
        }
    }
}

/// A completed point travelling back to the consumer, ordered by its
/// position in the requested sequence.
struct Sequenced {
    pos: usize,
    index: usize,
    point: SweepPoint,
}

impl PartialEq for Sequenced {
    fn eq(&self, other: &Sequenced) -> bool {
        self.pos == other.pos
    }
}

impl Eq for Sequenced {}

impl PartialOrd for Sequenced {
    fn partial_cmp(&self, other: &Sequenced) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sequenced {
    fn cmp(&self, other: &Sequenced) -> Ordering {
        self.pos.cmp(&other.pos)
    }
}

/// The engine behind both public stream types: workers, the result
/// channel, and the reorder buffer that restores sequence order.
struct RawStream {
    /// `None` once the stream has finished or been dropped.
    rx: Option<Receiver<Sequenced>>,
    /// Completed points that arrived ahead of their turn (min-heap).
    pending: BinaryHeap<Reverse<Sequenced>>,
    next_pos: usize,
    total: usize,
    workers: Vec<JoinHandle<()>>,
}

fn spawn(entries: Vec<Entry>, workers: usize, fast_forward: bool, lanes: usize) -> RawStream {
    let total = entries.len();
    let jobs = plan_jobs(&entries, lanes);
    let workers = workers.clamp(1, jobs.len().max(1));

    // Seed each deque with a contiguous chunk of the job sequence: jobs
    // of one program are adjacent, so each worker starts on as few
    // distinct programs as possible.
    let mut queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let chunk = jobs.len().div_ceil(workers).max(1);
    for job in 0..jobs.len() {
        let owner = (job / chunk).min(workers - 1);
        queues[owner].get_mut().unwrap().push_back(job);
    }

    let shared = Arc::new(Shared {
        entries,
        jobs,
        queues,
        fast_forward,
    });
    let (tx, rx) = channel();
    let handles = (0..workers)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut runners = Runners::new();
                'claim: while let Some(job) = next_job(&shared, w) {
                    let mut dropped = false;
                    execute_job(
                        &shared.entries,
                        &shared.jobs[job].positions,
                        shared.fast_forward,
                        &mut runners,
                        |pos, point| {
                            let sequenced = Sequenced {
                                pos,
                                index: shared.entries[pos].spec.index,
                                point,
                            };
                            // A send fails only when the consumer dropped
                            // the stream: stop claiming work and exit.
                            dropped |= tx.send(sequenced).is_err();
                        },
                    );
                    if dropped {
                        break 'claim;
                    }
                }
            })
        })
        .collect();
    RawStream {
        rx: Some(rx),
        pending: BinaryHeap::new(),
        next_pos: 0,
        total,
        workers: handles,
    }
}

impl RawStream {
    fn next_in_order(&mut self) -> Option<(usize, SweepPoint)> {
        if self.next_pos >= self.total {
            self.finish();
            return None;
        }
        loop {
            if self
                .pending
                .peek()
                .is_some_and(|Reverse(s)| s.pos == self.next_pos)
            {
                let Reverse(s) = self.pending.pop().expect("peeked");
                self.next_pos += 1;
                if self.next_pos >= self.total {
                    // Exhausting the stream joins the workers, so a
                    // finished iteration implies a quiesced pool.
                    self.finish();
                }
                return Some((s.index, s.point));
            }
            let rx = self.rx.as_ref().expect("stream polled after finish");
            match rx.recv() {
                Ok(sequenced) => self.pending.push(Reverse(sequenced)),
                Err(_) => {
                    // Every worker hung up with points still missing:
                    // one of them panicked. Joining propagates it.
                    self.finish();
                    unreachable!("sweep workers exited without completing the grid");
                }
            }
        }
    }

    fn remaining(&self) -> usize {
        self.total - self.next_pos
    }

    fn finish(&mut self) {
        self.rx.take();
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for RawStream {
    fn drop(&mut self) {
        // Closing the channel makes every pending send fail, so workers
        // abandon the rest of the grid; join them without re-raising (a
        // worker panic mid-drop must not abort an unwinding thread).
        self.rx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A running sweep yielding points in deterministic grid order as they
/// complete. Created by [`Sweep::run_streaming`](crate::Sweep::run_streaming).
pub struct SweepStream {
    inner: RawStream,
}

impl Iterator for SweepStream {
    type Item = SweepPoint;

    fn next(&mut self) -> Option<SweepPoint> {
        self.inner.next_in_order().map(|(_, point)| point)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.inner.remaining(), Some(self.inner.remaining()))
    }
}

impl ExactSizeIterator for SweepStream {}

/// A running subset sweep yielding `(grid_index, point)` pairs in the
/// order the specs were submitted. Created by
/// [`Sweep::run_subset_streaming`](crate::Sweep::run_subset_streaming).
pub struct IndexedSweepStream {
    inner: RawStream,
}

impl Iterator for IndexedSweepStream {
    type Item = (usize, SweepPoint);

    fn next(&mut self) -> Option<(usize, SweepPoint)> {
        self.inner.next_in_order()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.inner.remaining(), Some(self.inner.remaining()))
    }
}

impl ExactSizeIterator for IndexedSweepStream {}

pub(crate) fn stream_all(
    entries: Vec<Entry>,
    workers: usize,
    fast_forward: bool,
    lanes: usize,
) -> SweepStream {
    SweepStream {
        inner: spawn(entries, workers, fast_forward, lanes),
    }
}

pub(crate) fn stream_indexed(
    entries: Vec<Entry>,
    workers: usize,
    fast_forward: bool,
    lanes: usize,
) -> IndexedSweepStream {
    // Reindex to submission order: the reorder buffer sequences by
    // position in `entries`, while each yielded pair keeps the spec's own
    // grid index for the caller's bookkeeping.
    IndexedSweepStream {
        inner: spawn(entries, workers, fast_forward, lanes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sweep;
    use dva_workloads::Scale;

    fn sweep(threads: usize) -> Sweep {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies([1, 30])
            .scale(Scale::Quick)
            .threads(threads)
    }

    #[test]
    fn streaming_matches_run_for_every_thread_count() {
        let reference = sweep(1).run();
        for threads in [1, 2, 3, 8] {
            let streamed: Vec<_> = sweep(threads).run_streaming().collect();
            assert_eq!(
                streamed, reference.points,
                "streamed points must be byte-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn grid_enumerates_what_run_measures() {
        let sweep = sweep(1);
        let specs = sweep.grid();
        let results = sweep.run();
        assert_eq!(specs.len(), results.points.len());
        for (spec, point) in specs.iter().zip(&results.points) {
            assert_eq!(spec.index, point_index(&results, point));
            assert_eq!(spec.machine, point.machine);
            assert_eq!(spec.latency, point.latency);
            assert_eq!(spec.memory, point.memory);
            assert_eq!(spec.program.name(), point.program);
        }
        // All points of one benchmark share instruction storage.
        assert_eq!(
            specs[0].program.insts().as_ptr(),
            specs[1].program.insts().as_ptr()
        );
    }

    fn point_index(results: &crate::SweepResults, point: &SweepPoint) -> usize {
        results.points.iter().position(|p| p == point).unwrap()
    }

    #[test]
    fn subsets_stream_in_submission_order_with_grid_indices() {
        let session = sweep(4);
        let full = session.run();
        // Every third point, submitted in reverse grid order.
        let mut subset: Vec<PointSpec> = session.grid().into_iter().step_by(3).collect();
        subset.reverse();
        let expected: Vec<usize> = subset.iter().map(|s| s.index).collect();
        let streamed: Vec<(usize, SweepPoint)> = session.run_subset_streaming(subset).collect();
        let order: Vec<usize> = streamed.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, expected, "pairs arrive in submission order");
        for (index, point) in streamed {
            assert_eq!(point, full.points[index], "byte-identical to the full run");
        }
    }

    #[test]
    fn dropping_a_stream_cancels_the_remaining_work() {
        let mut stream = sweep(2).run_streaming();
        let first = stream.next().unwrap();
        assert_eq!(first.label, "REF");
        drop(stream); // must not hang or leak workers
    }

    #[test]
    fn empty_sessions_stream_nothing() {
        let mut stream = Sweep::new().run_streaming();
        assert_eq!(stream.size_hint(), (0, Some(0)));
        assert!(stream.next().is_none());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_to_the_consumer() {
        fn explode(_: &Program) -> crate::CustomSim<'_> {
            panic!("boom")
        }
        let results: Vec<_> = Sweep::new()
            .machine(Machine::custom("BOOM", explode))
            .benchmark(Benchmark::Trfd)
            .scale(Scale::Quick)
            .threads(2)
            .run_streaming()
            .collect();
        drop(results);
    }
}
