//! Adaptive sweeps: knee-finding latency refinement with dominance
//! pruning.
//!
//! The paper's figures are curves with knees — speedup vs memory
//! latency flattens once decoupling has hidden everything there is to
//! hide — so a dense uniform latency grid wastes most of its points on
//! flat regions. An [`AdaptiveSweep`] measures the same curves with a
//! fraction of the simulations:
//!
//! 1. **Seed**: every curve (one per machine × program × memory model)
//!    is sampled at a handful of evenly spaced latencies of a declared
//!    *dense axis* (the grid a plain [`Sweep`] would measure).
//! 2. **Refine**: wherever a sampled point deviates from the chord of
//!    its neighbours by more than a tolerance — the discrete form of "the
//!    slope changes here" — the two flanking intervals are bisected (in
//!    axis-index space), round after round, until every curve is
//!    piecewise linear within tolerance or no interior index is left.
//! 3. **Prune**: a curve whose machine is a declared *prune candidate*
//!    and whose every sampled point is at least as slow as the baseline
//!    machine's stops being refined; the decision is recorded in the
//!    [`AdaptiveReport`].
//!
//! Every point an adaptive run measures is a [`PointSpec`] taken
//! verbatim from the dense sweep's [`Sweep::grid`], so it is
//! byte-identical to the same point of a dense run — and content-
//! addresses identically, which is how the `dva-serve` result cache is
//! shared between dense and adaptive runs in both directions.
//!
//! Refinement is a pure function of measured cycle counts: rounds are
//! barriers, requests are deduplicated and sorted, and results are keyed
//! by dense grid index — so the sampled set (and therefore the result)
//! is deterministic regardless of thread count, lane width or the order
//! points complete in.

use crate::stream::PointSpec;
use crate::sweep::{Sweep, SweepPoint, SweepResults};
use dva_json::{Json, JsonError};
use dva_memory::MemoryModelKind;
use std::collections::BTreeMap;

/// Default number of seed samples per curve (clamped to the axis size).
pub const DEFAULT_SEEDS: usize = 7;
/// Default refinement tolerance: a sampled point may deviate from its
/// neighbours' chord by this fraction of its own cycle count before the
/// flanking intervals are bisected.
pub const DEFAULT_TOLERANCE: f64 = 0.02;
/// Hard cap on refinement rounds — a safety net far above the
/// `log2(axis)` rounds bisection can actually take.
const MAX_ROUNDS: usize = 64;

/// An adaptive sweep session: a [`Sweep`] template (machines, programs,
/// memory models, scale, threads, lanes) plus a dense latency axis to
/// refine over.
///
/// ```
/// use dva_sim_api::{AdaptiveSweep, Machine, Sweep};
/// use dva_workloads::{Benchmark, Scale};
///
/// let outcome = AdaptiveSweep::over(
///     Sweep::new()
///         .machines([Machine::reference(1), Machine::dva(1)])
///         .benchmark(Benchmark::Trfd)
///         .scale(Scale::Quick)
///         .threads(1),
///     1..=32,
/// )
/// .run();
/// assert!(outcome.report.sampled_points < outcome.report.dense_points);
/// // Every sampled point is byte-identical to the dense run's.
/// let curve = outcome.results.curve("DVA", Benchmark::Trfd, dva_sim_api::MemoryModelKind::Flat);
/// assert!(curve.len() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveSweep {
    template: Sweep,
    axis: Vec<u64>,
    seeds: usize,
    tolerance: f64,
    baseline: Option<String>,
    prune: Vec<String>,
    margin: f64,
}

impl AdaptiveSweep {
    /// An adaptive session over `template`'s machines, programs and
    /// memory models, refining the given latency axis. The axis is
    /// sorted and deduplicated; any latencies on the template itself are
    /// ignored — the axis *is* the latency grid of the equivalent
    /// [`dense`](AdaptiveSweep::dense) sweep.
    pub fn over(template: Sweep, axis: impl IntoIterator<Item = u64>) -> AdaptiveSweep {
        let mut axis: Vec<u64> = axis.into_iter().collect();
        axis.sort_unstable();
        axis.dedup();
        AdaptiveSweep {
            template,
            axis,
            seeds: DEFAULT_SEEDS,
            tolerance: DEFAULT_TOLERANCE,
            baseline: None,
            prune: Vec::new(),
            margin: 0.0,
        }
    }

    /// Sets the number of evenly spaced seed samples per curve (at least
    /// 2; clamped to the axis size when the session runs).
    #[must_use]
    pub fn seeds(mut self, seeds: usize) -> AdaptiveSweep {
        self.seeds = seeds.max(2);
        self
    }

    /// Sets the refinement tolerance (relative chord deviation above
    /// which an interval pair is bisected).
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> AdaptiveSweep {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Enables dominance pruning: curves of the `prune` machine labels
    /// stop being refined once every sampled latency is at least as slow
    /// as the same curve of the `baseline` label (same program and
    /// memory model). The baseline itself, and labels not listed, are
    /// always refined to completion.
    #[must_use]
    pub fn prune_against(
        mut self,
        baseline: impl Into<String>,
        prune: impl IntoIterator<Item = impl Into<String>>,
    ) -> AdaptiveSweep {
        self.baseline = Some(baseline.into());
        self.prune = prune.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the pruning margin: with margin `m`, a candidate sample only
    /// counts as dominated when it is at least `m` (fractionally) slower
    /// than the baseline — `0.0` (the default) lets ties count.
    #[must_use]
    pub fn margin(mut self, margin: f64) -> AdaptiveSweep {
        self.margin = margin.max(0.0);
        self
    }

    /// Attaches a cooperative cancellation token to the session by
    /// stamping the underlying template sweep (see
    /// [`Sweep::cancel_token`]): every round submitted through the
    /// template's streaming runs observes it, so cancelling the token —
    /// or its deadline passing — stops an adaptive job between (and
    /// inside) refinement rounds.
    #[must_use]
    pub fn cancel_token(mut self, cancel: crate::CancelToken) -> AdaptiveSweep {
        self.template = self.template.cancel_token(cancel);
        self
    }

    /// A handle on the template's cancellation token (clones share
    /// state).
    pub fn cancel_handle(&self) -> crate::CancelToken {
        self.template.cancel_handle()
    }

    /// The dense latency axis this session refines over.
    pub fn axis(&self) -> &[u64] {
        &self.axis
    }

    /// The equivalent dense sweep: the template with the full axis as
    /// its latency grid. An adaptive run measures a subset of exactly
    /// this sweep's [`grid`](Sweep::grid) — same specs, same bytes, same
    /// cache keys.
    pub fn dense(&self) -> Sweep {
        let mut sweep = self.template.clone();
        sweep.latencies = self.axis.clone();
        sweep
    }

    /// Points the dense sweep would measure.
    pub fn dense_len(&self) -> usize {
        self.dense().len()
    }

    /// Starts a planner for this session: the round-based state machine
    /// external executors (the `dva-serve` cache) drive. Most callers
    /// want [`run`](AdaptiveSweep::run).
    pub fn planner(&self) -> AdaptivePlanner {
        AdaptivePlanner::new(self)
    }

    /// Runs the session locally: each round's requests go through
    /// [`Sweep::run_subset_streaming`] (work stealing, lane batching and
    /// translate-once programs come for free), and the measured points
    /// feed the next round, until every curve has converged or been
    /// pruned.
    pub fn run(&self) -> AdaptiveOutcome {
        let sweep = self.dense();
        let mut planner = self.planner();
        loop {
            let specs = planner.next_round();
            if specs.is_empty() {
                break;
            }
            for (index, point) in sweep.run_subset_streaming(specs) {
                planner.record(index, point);
            }
        }
        planner.finish()
    }

    /// The stable JSON form of this session's specification — the
    /// template sweep plus the axis and refinement knobs. The wire form
    /// of a `dva-serve` adaptive job.
    ///
    /// # Errors
    ///
    /// Fails exactly when the template fails [`Sweep::to_json`] (custom
    /// machines or custom programs).
    pub fn to_json(&self) -> Result<Json, JsonError> {
        Ok(Json::obj([
            ("sweep", self.template.to_json()?),
            (
                "axis",
                Json::Array(self.axis.iter().map(|&l| Json::from(l)).collect()),
            ),
            ("seeds", Json::from(self.seeds)),
            ("tolerance", Json::Float(self.tolerance)),
            (
                "baseline",
                self.baseline
                    .as_deref()
                    .map(Json::from)
                    .unwrap_or(Json::Null),
            ),
            (
                "prune",
                Json::Array(self.prune.iter().map(|l| Json::from(l.as_str())).collect()),
            ),
            ("margin", Json::Float(self.margin)),
        ]))
    }

    /// Reconstructs a session from its [`to_json`](AdaptiveSweep::to_json)
    /// form.
    pub fn from_json(json: &Json) -> Result<AdaptiveSweep, JsonError> {
        let template = Sweep::from_json(json.field("sweep")?)?;
        let mut axis = Vec::new();
        for latency in json.field("axis")?.as_array()? {
            axis.push(latency.as_u64()?);
        }
        let mut adaptive = AdaptiveSweep::over(template, axis)
            .seeds(json.field("seeds")?.as_usize()?)
            .tolerance(json.field("tolerance")?.as_f64()?)
            .margin(json.field("margin")?.as_f64()?);
        if let Json::Null = json.field("baseline")? {
        } else {
            let baseline = json.field("baseline")?.as_str()?.to_string();
            let mut prune = Vec::new();
            for label in json.field("prune")?.as_array()? {
                prune.push(label.as_str()?.to_string());
            }
            adaptive = adaptive.prune_against(baseline, prune);
        }
        Ok(adaptive)
    }
}

/// What an [`AdaptiveSweep`] run produced: the sampled points (a strict
/// subset of the dense grid, in dense grid order) and the sampling
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Every sampled point, byte-identical to the dense run's, in dense
    /// grid order. Use [`SweepResults::curve`] /
    /// [`SweepResults::interpolated_cycles`] — the latency axis is
    /// sparse and non-uniform.
    pub results: SweepResults,
    /// What was sampled, skipped and pruned.
    pub report: AdaptiveReport,
}

/// The sampling accounting of one adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Points the equivalent dense sweep would have measured.
    pub dense_points: usize,
    /// Points actually sampled (simulated or served from a cache).
    pub sampled_points: usize,
    /// Dense points skipped because their curve converged — they are
    /// recoverable by linear interpolation within tolerance.
    pub skipped_interpolated: usize,
    /// Dense points skipped because their curve was dominance-pruned.
    pub skipped_dominated: usize,
    /// Refinement rounds executed (the seed round included).
    pub rounds: usize,
    /// The dense axis length (every curve spans this many latencies).
    pub axis_len: usize,
    /// Per-curve accounting, in dense grid order of the curves.
    pub curves: Vec<CurveReport>,
}

impl AdaptiveReport {
    /// The curves that were dominance-pruned, in dense grid order.
    pub fn pruned(&self) -> impl Iterator<Item = &CurveReport> {
        self.curves.iter().filter(|c| c.pruned_round.is_some())
    }

    /// Fraction of the dense grid that was sampled.
    pub fn sampled_fraction(&self) -> f64 {
        self.sampled_points as f64 / self.dense_points.max(1) as f64
    }
}

/// One curve's sampling outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveReport {
    /// The machine label of the curve.
    pub label: String,
    /// The program name of the curve.
    pub program: String,
    /// The memory-model coordinate of the curve.
    pub memory: MemoryModelKind,
    /// Latencies sampled on this curve.
    pub sampled: usize,
    /// The round (0-based) after which the curve was dominance-pruned,
    /// or `None` if it was refined to convergence.
    pub pruned_round: Option<usize>,
}

/// The round-based planner behind [`AdaptiveSweep`]: request a round
/// with [`next_round`](AdaptivePlanner::next_round), measure the specs
/// however you like (locally, through a cache, on another machine),
/// [`record`](AdaptivePlanner::record) every result, repeat until the
/// round comes back empty, then [`finish`](AdaptivePlanner::finish).
///
/// The planner is deterministic: the requests of round *n+1* are a pure
/// function of the results of rounds *0..=n*, and both requests and
/// final results are ordered by dense grid index.
pub struct AdaptivePlanner {
    specs: Vec<PointSpec>,
    axis: Vec<u64>,
    tolerance: f64,
    margin: f64,
    /// Curves in dense grid order of (program, model, machine); the
    /// curve of grid index `i` is `curve_of(i)`.
    curves: Vec<Curve>,
    machines: usize,
    models: usize,
    /// Seed axis indices (evenly spaced, endpoints included).
    seed_indices: Vec<usize>,
    /// Index of each curve's baseline curve, when pruning is on.
    baselines: Vec<Option<usize>>,
    points: BTreeMap<usize, SweepPoint>,
    outstanding: usize,
    rounds: usize,
    started: bool,
}

struct Curve {
    label: String,
    program: String,
    memory: MemoryModelKind,
    /// axis index → measured cycles.
    samples: BTreeMap<usize, u64>,
    prunable: bool,
    pruned_round: Option<usize>,
}

impl AdaptivePlanner {
    fn new(adaptive: &AdaptiveSweep) -> AdaptivePlanner {
        let dense = adaptive.dense();
        let specs = dense.grid();
        let machines = dense.machines.len();
        let models = dense.memory_models.len().max(1);
        let axis = adaptive.axis.clone();

        // One curve per (program, model, machine): grid order within one
        // latency step. Curve metadata comes from the specs of the first
        // axis position.
        let curves_per_program = models * machines;
        let programs = if curves_per_program == 0 || axis.is_empty() {
            0
        } else {
            specs.len() / (axis.len() * curves_per_program)
        };
        let mut curves = Vec::with_capacity(programs * curves_per_program);
        for p in 0..programs {
            for mk in 0..curves_per_program {
                let spec = &specs[(p * axis.len()) * curves_per_program + mk];
                let label = spec.machine.label();
                curves.push(Curve {
                    prunable: adaptive.prune.contains(&label),
                    label,
                    program: spec.program.name().to_string(),
                    memory: spec.memory,
                    samples: BTreeMap::new(),
                    pruned_round: None,
                });
            }
        }
        // Resolve each prunable curve's baseline: the first curve with
        // the baseline label, same program and memory model.
        let baselines = curves
            .iter()
            .map(|curve| {
                let baseline = adaptive.baseline.as_deref()?;
                if !curve.prunable || curve.label == baseline {
                    return None;
                }
                curves.iter().position(|b| {
                    b.label == baseline && b.program == curve.program && b.memory == curve.memory
                })
            })
            .collect();

        let seeds = adaptive.seeds.clamp(2, axis.len().max(1));
        let seed_indices: Vec<usize> = if axis.len() <= seeds {
            (0..axis.len()).collect()
        } else {
            let mut indices: Vec<usize> = (0..seeds)
                .map(|i| i * (axis.len() - 1) / (seeds - 1))
                .collect();
            indices.dedup();
            indices
        };

        AdaptivePlanner {
            specs,
            axis,
            tolerance: adaptive.tolerance,
            margin: adaptive.margin,
            curves,
            machines,
            models,
            seed_indices,
            baselines,
            points: BTreeMap::new(),
            outstanding: 0,
            rounds: 0,
            started: false,
        }
    }

    /// Dense grid index of (curve, axis position).
    fn index_of(&self, curve: usize, axis_idx: usize) -> usize {
        let per_program = self.models * self.machines;
        let (program, mk) = (curve / per_program, curve % per_program);
        (program * self.axis.len() + axis_idx) * per_program + mk
    }

    /// The next round of specs to measure, ordered by dense grid index —
    /// seeds first, then one bisection round per call. Empty when every
    /// curve has converged or been pruned (the session is done).
    ///
    /// # Panics
    ///
    /// Panics if the previous round has unrecorded points: rounds are
    /// barriers, which is what makes refinement deterministic.
    pub fn next_round(&mut self) -> Vec<PointSpec> {
        assert_eq!(
            self.outstanding, 0,
            "record every point of the previous round before requesting the next"
        );
        let requests = if !self.started {
            self.started = true;
            let mut requests = Vec::new();
            for curve in 0..self.curves.len() {
                for &axis_idx in &self.seed_indices {
                    requests.push(self.index_of(curve, axis_idx));
                }
            }
            requests
        } else if self.rounds >= MAX_ROUNDS {
            Vec::new()
        } else {
            self.prune_dominated();
            self.refinement_requests()
        };
        if requests.is_empty() {
            return Vec::new();
        }
        self.rounds += 1;
        self.outstanding = requests.len();
        let mut requests = requests;
        requests.sort_unstable();
        requests
            .into_iter()
            .map(|index| self.specs[index].clone())
            .collect()
    }

    /// Records one measured point of the current round by its dense grid
    /// index. Order does not matter; refinement state only advances at
    /// the round barrier.
    pub fn record(&mut self, index: usize, point: SweepPoint) {
        let per_program = self.models * self.machines;
        let curve = (index / (self.axis.len() * per_program)) * per_program + index % per_program;
        let axis_idx = (index / per_program) % self.axis.len();
        self.curves[curve]
            .samples
            .insert(axis_idx, point.result.cycles);
        if self.points.insert(index, point).is_none() {
            self.outstanding = self.outstanding.saturating_sub(1);
        }
    }

    /// Marks prunable curves dominated by their baseline across every
    /// commonly sampled latency. Runs at the round barrier, so the
    /// decision is deterministic.
    fn prune_dominated(&mut self) {
        let margin = self.margin;
        let round = self.rounds;
        for i in 0..self.curves.len() {
            let Some(baseline) = self.baselines[i] else {
                continue;
            };
            if self.curves[i].pruned_round.is_some() {
                continue;
            }
            let candidate = &self.curves[i].samples;
            let base = &self.curves[baseline].samples;
            let mut compared = 0usize;
            let dominated = candidate.iter().all(|(axis_idx, &cycles)| {
                let Some(&base_cycles) = base.get(axis_idx) else {
                    return true; // no baseline sample here: not evidence either way
                };
                compared += 1;
                cycles as f64 >= base_cycles as f64 * (1.0 + margin)
            });
            if dominated && compared >= 2 {
                self.curves[i].pruned_round = Some(round - 1);
            }
        }
    }

    /// One bisection round: for every active curve, test each interior
    /// sampled point against the chord of its neighbours; where the
    /// deviation exceeds the tolerance, request the (index) midpoints of
    /// both flanking intervals.
    fn refinement_requests(&self) -> Vec<usize> {
        let mut requests = Vec::new();
        for (c, curve) in self.curves.iter().enumerate() {
            if curve.pruned_round.is_some() {
                continue;
            }
            let sampled: Vec<(usize, u64)> = curve.samples.iter().map(|(&i, &c)| (i, c)).collect();
            let mut wanted: Vec<usize> = Vec::new();
            for w in sampled.windows(3) {
                let [(i0, c0), (i1, c1), (i2, c2)] = [w[0], w[1], w[2]];
                let (l0, l1, l2) = (
                    self.axis[i0] as f64,
                    self.axis[i1] as f64,
                    self.axis[i2] as f64,
                );
                let chord = c0 as f64 + (c2 as f64 - c0 as f64) * (l1 - l0) / (l2 - l0);
                let deviation = (c1 as f64 - chord).abs() / (c1 as f64).max(1.0);
                if deviation > self.tolerance {
                    for (lo, hi) in [(i0, i1), (i1, i2)] {
                        let mid = lo + (hi - lo) / 2;
                        if mid != lo && !curve.samples.contains_key(&mid) && !wanted.contains(&mid)
                        {
                            wanted.push(mid);
                        }
                    }
                }
            }
            requests.extend(
                wanted
                    .into_iter()
                    .map(|axis_idx| self.index_of(c, axis_idx)),
            );
        }
        requests
    }

    /// Finishes the session: the sampled points in dense grid order plus
    /// the sampling report.
    ///
    /// # Panics
    ///
    /// Panics if the current round has unrecorded points.
    pub fn finish(self) -> AdaptiveOutcome {
        assert_eq!(self.outstanding, 0, "finish() with unrecorded points");
        let axis_len = self.axis.len();
        let mut skipped_interpolated = 0;
        let mut skipped_dominated = 0;
        let curves: Vec<CurveReport> = self
            .curves
            .iter()
            .map(|curve| {
                let unsampled = axis_len - curve.samples.len();
                match curve.pruned_round {
                    Some(_) => skipped_dominated += unsampled,
                    None => skipped_interpolated += unsampled,
                }
                CurveReport {
                    label: curve.label.clone(),
                    program: curve.program.clone(),
                    memory: curve.memory,
                    sampled: curve.samples.len(),
                    pruned_round: curve.pruned_round,
                }
            })
            .collect();
        let sampled_points = self.points.len();
        AdaptiveOutcome {
            results: SweepResults {
                points: self.points.into_values().collect(),
            },
            report: AdaptiveReport {
                dense_points: self.specs.len(),
                sampled_points,
                skipped_interpolated,
                skipped_dominated,
                rounds: self.rounds,
                axis_len,
                curves,
            },
        }
    }
}

/// The knee of a sampled `(latency, cycles)` curve: the sampled latency
/// where the slope changes the most between the flanking intervals
/// (ties resolve to the lowest latency). `None` for curves with fewer
/// than three points — a segment has no interior.
///
/// This is the figure-of-merit adaptive refinement localizes: on a
/// sparse adaptive curve the knee matches the dense curve's within the
/// local sample spacing.
pub fn knee_latency(curve: &[(u64, u64)]) -> Option<u64> {
    let mut best: Option<(f64, u64)> = None;
    for w in curve.windows(3) {
        let [(l0, c0), (l1, c1), (l2, c2)] = [w[0], w[1], w[2]];
        if l1 == l0 || l2 == l1 {
            continue;
        }
        let left = (c1 as f64 - c0 as f64) / (l1 - l0) as f64;
        let right = (c2 as f64 - c1 as f64) / (l2 - l1) as f64;
        let change = (right - left).abs();
        if best.is_none_or(|(b, _)| change > b) {
            best = Some((change, l1));
        }
    }
    best.map(|(_, latency)| latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use dva_workloads::{Benchmark, Scale};

    fn template() -> Sweep {
        Sweep::new()
            .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .scale(Scale::Quick)
            .threads(1)
    }

    #[test]
    fn seeds_are_evenly_spaced_with_endpoints() {
        let adaptive = AdaptiveSweep::over(template(), 1..=100).seeds(7);
        let planner = adaptive.planner();
        assert_eq!(planner.seed_indices, vec![0, 16, 33, 49, 66, 82, 99]);
        // A tiny axis samples everything.
        let all = AdaptiveSweep::over(template(), [1, 30, 100]).seeds(7);
        assert_eq!(all.planner().seed_indices, vec![0, 1, 2]);
    }

    #[test]
    fn axis_is_sorted_and_deduplicated() {
        let adaptive = AdaptiveSweep::over(template(), [50, 1, 50, 30]);
        assert_eq!(adaptive.axis(), &[1, 30, 50]);
        assert_eq!(adaptive.dense().latencies, vec![1, 30, 50]);
        assert_eq!(adaptive.dense_len(), 3 * 2 * 3);
    }

    #[test]
    fn sampled_points_are_a_subset_of_the_dense_grid() {
        let adaptive = AdaptiveSweep::over(template(), 1..=33).seeds(5);
        let dense = adaptive.dense().run();
        let sweep = adaptive.dense();
        let mut planner = adaptive.planner();
        let mut sampled = 0;
        loop {
            let specs = planner.next_round();
            if specs.is_empty() {
                break;
            }
            for (index, point) in sweep.run_subset_streaming(specs) {
                assert_eq!(
                    point, dense.points[index],
                    "adaptive point differs at {index}"
                );
                planner.record(index, point);
                sampled += 1;
            }
        }
        let outcome = planner.finish();
        assert_eq!(outcome.report.sampled_points, sampled);
        assert!(sampled < dense.points.len(), "refinement must skip points");
        assert_eq!(
            outcome.report.dense_points,
            outcome.report.sampled_points
                + outcome.report.skipped_interpolated
                + outcome.report.skipped_dominated
        );
    }

    #[test]
    fn ideal_curves_never_refine_past_the_seeds() {
        let adaptive = AdaptiveSweep::over(template(), 1..=100).seeds(5);
        let outcome = adaptive.run();
        for curve in &outcome.report.curves {
            if curve.label == "IDEAL" {
                assert_eq!(curve.sampled, 5, "IDEAL is flat; seeds suffice");
            }
        }
    }

    #[test]
    fn pruning_stops_refinement_and_is_reported() {
        // REF is slower than DVA at every latency on TRFD, so with REF
        // declared prunable it must be pruned after the seed round.
        let adaptive = AdaptiveSweep::over(
            Sweep::new()
                .machines([Machine::reference(1), Machine::dva(1)])
                .benchmark(Benchmark::Trfd)
                .scale(Scale::Quick)
                .threads(1),
            1..=64,
        )
        .seeds(5)
        .prune_against("DVA", ["REF"]);
        let outcome = adaptive.run();
        let pruned: Vec<&CurveReport> = outcome.report.pruned().collect();
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].label, "REF");
        assert_eq!(pruned[0].sampled, 5, "pruned after the seed round");
        assert_eq!(pruned[0].pruned_round, Some(0));
        assert!(outcome.report.skipped_dominated >= 64 - 5);
        // The DVA (baseline) curve still refined to convergence.
        let dva = outcome
            .report
            .curves
            .iter()
            .find(|c| c.label == "DVA")
            .unwrap();
        assert!(dva.pruned_round.is_none());
    }

    #[test]
    fn margin_makes_pruning_more_conservative() {
        let build = |margin: f64| {
            AdaptiveSweep::over(
                Sweep::new()
                    .machines([Machine::reference(1), Machine::dva(1)])
                    .benchmark(Benchmark::Trfd)
                    .scale(Scale::Quick)
                    .threads(1),
                1..=64,
            )
            .seeds(5)
            .prune_against("DVA", ["REF"])
            .margin(margin)
        };
        assert_eq!(build(0.0).run().report.pruned().count(), 1);
        // An absurd margin (REF would have to be 100x slower) disables it.
        assert_eq!(build(99.0).run().report.pruned().count(), 0);
    }

    #[test]
    fn rounds_are_barriers() {
        let adaptive = AdaptiveSweep::over(template(), 1..=16).seeds(3);
        let mut planner = adaptive.planner();
        let first = planner.next_round();
        assert!(!first.is_empty());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            planner.next_round();
        }));
        assert!(result.is_err(), "requesting a round mid-round must panic");
    }

    #[test]
    fn wire_form_round_trips() {
        let adaptive = AdaptiveSweep::over(template(), 1..=50)
            .seeds(9)
            .tolerance(0.05)
            .prune_against("DVA", ["REF", "BYP 4/8"])
            .margin(0.01);
        let json = adaptive.to_json().unwrap();
        let back = AdaptiveSweep::from_json(&json).unwrap();
        assert_eq!(back.to_json().unwrap().render(), json.render());
        assert_eq!(back.axis(), adaptive.axis());
        // And the baseline-free form too.
        let plain = AdaptiveSweep::over(template(), [1, 30]);
        let json = plain.to_json().unwrap();
        assert_eq!(
            AdaptiveSweep::from_json(&json)
                .unwrap()
                .to_json()
                .unwrap()
                .render(),
            json.render()
        );
    }

    #[test]
    fn knee_latency_finds_a_synthetic_knee() {
        // Flat to 30, then rising: the knee is at 30.
        let curve: Vec<(u64, u64)> = (1u64..=60)
            .map(|l| (l, 1000 + l.saturating_sub(30) * 50))
            .collect();
        assert_eq!(knee_latency(&curve), Some(30));
        assert_eq!(knee_latency(&curve[..2]), None);
        // A straight line has no slope change; ties resolve low.
        let line: Vec<(u64, u64)> = (1..=10).map(|l| (l, l * 7)).collect();
        assert_eq!(knee_latency(&line), Some(2));
    }
}
