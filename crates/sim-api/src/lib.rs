//! Unified simulation API over every machine of the paper's evaluation.
//!
//! The paper's results are a cross-product of *machines* (REF, DVA,
//! BYP n/m, IDEAL) × *programs* × *memory latencies* — extended here by
//! a fourth axis, the *memory model* (flat / banked / multi-port
//! backends of [`dva_memory::MemoryModel`]). The underlying crates
//! expose one front door per machine ([`dva_ref::RefSim`],
//! [`dva_core::DvaSim`], [`dva_core::ideal_bound`]); this crate folds them
//! into a single [`Machine`] abstraction with a uniform
//! [`Machine::simulate`] returning one [`SimResult`] type, and a parallel
//! [`Sweep`] session that fans the whole cross-product out over OS
//! threads.
//!
//! Every timed machine is a [`dva_engine::Processor`] run by the shared
//! [`dva_engine::Driver`], and every result wraps the same
//! [`ResultCore`] — which is also how [`Machine::custom`] can accept any
//! boxed processor and hand back a full [`SimResult`].
//!
//! # Examples
//!
//! Simulate one program on every machine:
//!
//! ```
//! use dva_sim_api::Machine;
//! use dva_workloads::{Benchmark, Scale};
//!
//! let program = Benchmark::Trfd.program(Scale::Quick);
//! let machines = [Machine::reference(30), Machine::dva(30), Machine::ideal()];
//! let cycles: Vec<u64> = machines.iter().map(|m| m.simulate(&program).cycles).collect();
//! assert!(cycles[2] <= cycles[1]); // IDEAL bounds the DVA
//! ```
//!
//! Run a parallel sweep session:
//!
//! ```
//! use dva_sim_api::{Machine, Sweep};
//! use dva_workloads::{Benchmark, Scale};
//!
//! let results = Sweep::new()
//!     .machines([Machine::reference(1), Machine::dva(1)])
//!     .benchmarks([Benchmark::Trfd])
//!     .latencies([1, 30])
//!     .scale(Scale::Quick)
//!     .run();
//! assert_eq!(results.points.len(), 4); // 2 machines × 1 program × 2 latencies
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod cancel;
mod fault;
mod machine;
mod prepare;
mod result;
mod stream;
mod sweep;
mod wire;

pub use adaptive::{
    knee_latency, AdaptiveOutcome, AdaptivePlanner, AdaptiveReport, AdaptiveSweep, CurveReport,
    DEFAULT_SEEDS, DEFAULT_TOLERANCE,
};
pub use cancel::CancelToken;
pub use fault::{PointError, PointErrorKind};
pub use machine::{CustomMachine, CustomSim, Machine};
pub use prepare::{PreparedProgram, Runners};
pub use result::{MachineDetail, SimResult};
pub use stream::{IndexedSweepStream, PointSpec, SweepStream};
pub use sweep::{Sweep, SweepPoint, SweepResults};

// Re-exported so custom machines can be written against this crate
// alone: the processor contract, its statistics sink, the shared result
// core every machine reports, and the handful of foundation types a
// `Processor` impl needs (the clock type, the state tuple, the
// occupancy histogram). `MemoryModelKind` is the memory axis of
// [`Sweep`] sessions; the full backend surface lives in `dva_memory`.
pub use dva_engine::{Observers, Processor, Progress, Report, ResultCore, SimError};
pub use dva_isa::Cycle;
pub use dva_memory::{MemoryModelKind, MemoryParams};
pub use dva_metrics::{Histogram, UnitState};
