//! The failure taxonomy of a sweep: what a single poisoned grid point
//! looks like once it has been isolated.
//!
//! A simulation failure — a tripped deadlock watchdog or a panic inside
//! a machine model — used to tear down the worker thread that hit it
//! and, with it, the whole stream. The streaming executor now catches
//! both per point and reports them as a [`PointError`]: the grid
//! coordinates of the failed point plus what went wrong, so a consumer
//! can skip one poisoned point and keep every healthy result.

use dva_memory::MemoryModelKind;
use std::fmt;

/// What kind of failure poisoned a grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointErrorKind {
    /// The engine's deadlock watchdog tripped — a structured
    /// [`SimError`](dva_engine::SimError) carried in the message.
    Deadlock,
    /// The simulation panicked; the message carries the panic payload.
    Panic,
}

impl PointErrorKind {
    /// The stable wire name of this kind (`deadlock` / `panic`).
    pub fn as_str(self) -> &'static str {
        match self {
            PointErrorKind::Deadlock => "deadlock",
            PointErrorKind::Panic => "panic",
        }
    }

    /// Parses a wire name produced by [`as_str`](PointErrorKind::as_str).
    pub fn parse(s: &str) -> Option<PointErrorKind> {
        match s {
            "deadlock" => Some(PointErrorKind::Deadlock),
            "panic" => Some(PointErrorKind::Panic),
            _ => None,
        }
    }
}

/// A typed per-point simulation failure: the grid coordinates of the
/// poisoned point (mirroring [`SweepPoint`](crate::SweepPoint)'s
/// identity fields) plus the failure kind and message.
#[derive(Debug, Clone, PartialEq)]
pub struct PointError {
    /// Position of the point in the sweep's deterministic grid order.
    pub index: usize,
    /// The machine label (`REF`, `DVA`, `BYP 2/4`, …).
    pub label: String,
    /// The program name.
    pub program: String,
    /// The memory-latency coordinate.
    pub latency: u64,
    /// The memory-model coordinate.
    pub memory: MemoryModelKind,
    /// What kind of failure this was.
    pub kind: PointErrorKind,
    /// The human-readable diagnosis: the engine's deadlock line or the
    /// panic payload.
    pub message: String,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "point {} ({} / {} / L{}) failed: {}",
            self.index, self.label, self.program, self.latency, self.message
        )
    }
}

impl std::error::Error for PointError {}
