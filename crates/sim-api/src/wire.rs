//! Stable JSON forms of machines, results and sweep specifications —
//! the wire format of the `dva-serve` sweep service and the disk format
//! of its result cache.
//!
//! Everything here is *fallible* in exactly one place: machines built
//! with [`Machine::custom`] carry a function pointer and cannot cross a
//! process boundary, so serializing them (or a sweep/point containing
//! one) reports an error instead of silently dropping the machine.
//!
//! The rendered bytes are a compatibility surface: object fields are
//! emitted in a fixed order and numbers render canonically (see
//! [`dva_json`]), so equal values always produce equal bytes. A golden
//! test pins the format; changes must bump
//! [`dva_engine::ENGINE_VERSION`] so persisted caches are discarded.

use crate::sweep::{Sweep, SweepPoint, SweepResults};
use crate::{Machine, MachineDetail, SimResult};
use dva_core::{DvaConfig, IdealBound};
use dva_engine::ResultCore;
use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_memory::MemoryModelKind;
use dva_metrics::Histogram;
use dva_ref::RefParams;
use dva_workloads::{Benchmark, Scale};

impl Machine {
    /// The stable JSON form of this machine's full configuration —
    /// including the stamped latency and memory model, except for IDEAL,
    /// which has neither (so all IDEAL points of a latency grid share one
    /// form; the `dva-serve` cache exploits exactly that).
    ///
    /// # Errors
    ///
    /// Fails for [`Machine::custom`] machines, which carry a function
    /// pointer and cannot cross a process boundary.
    pub fn to_json(&self) -> Result<Json, JsonError> {
        machine_to_json(self)
    }

    /// Reconstructs a machine from its [`Machine::to_json`] form.
    pub fn from_json(json: &Json) -> Result<Machine, JsonError> {
        machine_from_json(json)
    }
}

/// The JSON form of a [`Machine`], or an error for custom machines.
pub(crate) fn machine_to_json(machine: &Machine) -> Result<Json, JsonError> {
    Ok(match machine {
        Machine::Ref(params) => {
            Json::obj([("kind", Json::from("ref")), ("params", params.to_json())])
        }
        Machine::Dva(config) => {
            Json::obj([("kind", Json::from("dva")), ("config", config.to_json())])
        }
        Machine::Ideal => Json::obj([("kind", Json::from("ideal"))]),
        Machine::Custom(custom) => {
            return Err(JsonError(format!(
                "custom machine `{:?}` cannot be serialized (it carries a function pointer); \
                 only REF/DVA/BYP/IDEAL machines cross the wire",
                custom
            )))
        }
    })
}

pub(crate) fn machine_from_json(json: &Json) -> Result<Machine, JsonError> {
    match json.field("kind")?.as_str()? {
        "ref" => Ok(Machine::Ref(RefParams::from_json(json.field("params")?)?)),
        "dva" => Ok(Machine::Dva(DvaConfig::from_json(json.field("config")?)?)),
        "ideal" => Ok(Machine::Ideal),
        other => Err(JsonError(format!("unknown machine kind `{other}`"))),
    }
}

fn detail_to_json(detail: &MachineDetail) -> Json {
    match detail {
        MachineDetail::Reference => Json::obj([("kind", Json::from("reference"))]),
        MachineDetail::Decoupled {
            avdq_occupancy,
            bypassed_loads,
            drain_stall_cycles,
            max_vpiq,
            max_apiq,
            max_avdq,
        } => Json::obj([
            ("kind", Json::from("decoupled")),
            ("avdq_occupancy", avdq_occupancy.to_json()),
            ("bypassed_loads", Json::from(*bypassed_loads)),
            ("drain_stall_cycles", Json::from(*drain_stall_cycles)),
            ("max_vpiq", Json::from(*max_vpiq)),
            ("max_apiq", Json::from(*max_apiq)),
            ("max_avdq", Json::from(*max_avdq)),
        ]),
        MachineDetail::Ideal(bound) => {
            Json::obj([("kind", Json::from("ideal")), ("bound", bound.to_json())])
        }
        MachineDetail::Custom { occupancy } => Json::obj([
            ("kind", Json::from("custom")),
            (
                "occupancy",
                occupancy
                    .as_ref()
                    .map(ToJson::to_json)
                    .unwrap_or(Json::Null),
            ),
        ]),
    }
}

fn detail_from_json(json: &Json) -> Result<MachineDetail, JsonError> {
    Ok(match json.field("kind")?.as_str()? {
        "reference" => MachineDetail::Reference,
        "decoupled" => MachineDetail::Decoupled {
            avdq_occupancy: Histogram::from_json(json.field("avdq_occupancy")?)?,
            bypassed_loads: json.field("bypassed_loads")?.as_u64()?,
            drain_stall_cycles: json.field("drain_stall_cycles")?.as_u64()?,
            max_vpiq: json.field("max_vpiq")?.as_usize()?,
            max_apiq: json.field("max_apiq")?.as_usize()?,
            max_avdq: json.field("max_avdq")?.as_usize()?,
        },
        "ideal" => MachineDetail::Ideal(IdealBound::from_json(json.field("bound")?)?),
        "custom" => MachineDetail::Custom {
            occupancy: match json.field("occupancy")? {
                Json::Null => None,
                value => Some(Histogram::from_json(value)?),
            },
        },
        other => return Err(JsonError(format!("unknown detail kind `{other}`"))),
    })
}

impl SimResult {
    /// The stable JSON form of this result: the shared core plus the
    /// machine-specific detail. Always succeeds (results carry no
    /// function pointers), so this is infallible unlike
    /// [`SweepPoint::to_json`].
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("core", self.core.to_json()),
            ("detail", detail_to_json(&self.detail)),
        ])
    }

    /// Reconstructs a result from its [`SimResult::to_json`] form.
    pub fn from_json(json: &Json) -> Result<SimResult, JsonError> {
        Ok(SimResult {
            core: ResultCore::from_json(json.field("core")?)?,
            detail: detail_from_json(json.field("detail")?)?,
        })
    }
}

/// The spelling of a [`Scale`] on the wire (the canonical
/// [`Scale::name`] form).
pub(crate) fn scale_to_str(scale: Scale) -> &'static str {
    scale.name()
}

pub(crate) fn scale_from_str(text: &str) -> Result<Scale, JsonError> {
    Scale::from_name(text).ok_or_else(|| JsonError(format!("unknown scale `{text}`")))
}

impl SweepPoint {
    /// The stable JSON form of one grid point: the full coordinate
    /// (machine, program, latency, memory model) plus the measurement.
    ///
    /// # Errors
    ///
    /// Fails for points measured on a [`Machine::custom`] machine, which
    /// cannot be serialized.
    pub fn to_json(&self) -> Result<Json, JsonError> {
        Ok(Json::obj([
            ("machine", machine_to_json(&self.machine)?),
            ("label", Json::from(self.label.as_str())),
            (
                "benchmark",
                self.benchmark
                    .map(|b| Json::from(b.name()))
                    .unwrap_or(Json::Null),
            ),
            ("program", Json::from(self.program.as_str())),
            ("latency", Json::from(self.latency)),
            ("memory", self.memory.to_json()),
            ("result", self.result.to_json()),
        ]))
    }

    /// Reconstructs a point from its [`SweepPoint::to_json`] form.
    pub fn from_json(json: &Json) -> Result<SweepPoint, JsonError> {
        let benchmark = match json.field("benchmark")? {
            Json::Null => None,
            name => {
                let name = name.as_str()?;
                Some(
                    Benchmark::from_name(name)
                        .ok_or_else(|| JsonError(format!("unknown benchmark `{name}`")))?,
                )
            }
        };
        Ok(SweepPoint {
            machine: machine_from_json(json.field("machine")?)?,
            label: json.field("label")?.as_str()?.to_string(),
            benchmark,
            program: json.field("program")?.as_str()?.to_string(),
            latency: json.field("latency")?.as_u64()?,
            memory: MemoryModelKind::from_json(json.field("memory")?)?,
            result: SimResult::from_json(json.field("result")?)?,
        })
    }
}

impl SweepResults {
    /// The stable JSON form of a whole result set, point order preserved.
    ///
    /// # Errors
    ///
    /// Fails if any point was measured on a [`Machine::custom`] machine.
    pub fn to_json(&self) -> Result<Json, JsonError> {
        let points = self
            .points
            .iter()
            .map(SweepPoint::to_json)
            .collect::<Result<_, _>>()?;
        Ok(Json::obj([("points", Json::Array(points))]))
    }

    /// Reconstructs a result set from its [`SweepResults::to_json`] form.
    pub fn from_json(json: &Json) -> Result<SweepResults, JsonError> {
        Ok(SweepResults {
            points: json
                .field("points")?
                .as_array()?
                .iter()
                .map(SweepPoint::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl Sweep {
    /// The stable JSON form of this session's *specification* — the grid
    /// axes, scale, thread count and fast-forward flag — which is what a
    /// `dva-serve` client sends to the daemon.
    ///
    /// # Errors
    ///
    /// Fails if the session contains a [`Machine::custom`] machine or a
    /// custom [`Sweep::program`]: both are process-local (a function
    /// pointer, an arbitrary trace) and cannot cross the wire. Sweeps
    /// built from [`Benchmark`]s always serialize.
    pub fn to_json(&self) -> Result<Json, JsonError> {
        if !self.programs.is_empty() {
            return Err(JsonError(
                "custom programs cannot be serialized; build wire sweeps from benchmarks"
                    .to_string(),
            ));
        }
        let machines = self
            .machines
            .iter()
            .map(machine_to_json)
            .collect::<Result<_, _>>()?;
        Ok(Json::obj([
            ("machines", Json::Array(machines)),
            (
                "benchmarks",
                Json::Array(
                    self.benchmarks
                        .iter()
                        .map(|b| Json::from(b.name()))
                        .collect(),
                ),
            ),
            (
                "latencies",
                Json::Array(self.latencies.iter().map(|&l| Json::from(l)).collect()),
            ),
            (
                "memory_models",
                Json::Array(self.memory_models.iter().map(ToJson::to_json).collect()),
            ),
            ("scale", Json::from(scale_to_str(self.scale))),
            ("threads", Json::from(self.threads)),
            ("fast_forward", Json::from(self.fast_forward)),
        ]))
    }

    /// Reconstructs a session from its [`Sweep::to_json`] form.
    pub fn from_json(json: &Json) -> Result<Sweep, JsonError> {
        let mut sweep = Sweep::new()
            .scale(scale_from_str(json.field("scale")?.as_str()?)?)
            .threads(json.field("threads")?.as_usize()?)
            .fast_forward(json.field("fast_forward")?.as_bool()?);
        for machine in json.field("machines")?.as_array()? {
            sweep = sweep.machine(machine_from_json(machine)?);
        }
        for name in json.field("benchmarks")?.as_array()? {
            let name = name.as_str()?;
            sweep = sweep.benchmark(
                Benchmark::from_name(name)
                    .ok_or_else(|| JsonError(format!("unknown benchmark `{name}`")))?,
            );
        }
        for latency in json.field("latencies")?.as_array()? {
            sweep = sweep.latencies([latency.as_u64()?]);
        }
        for model in json.field("memory_models")?.as_array()? {
            sweep = sweep.memory_model(MemoryModelKind::from_json(model)?);
        }
        Ok(sweep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CustomSim;

    fn sample_sweep() -> Sweep {
        Sweep::new()
            .machines([
                Machine::reference(1),
                Machine::byp(1, 4, 8),
                Machine::ideal(),
            ])
            .benchmarks([Benchmark::Trfd, Benchmark::Dyfesm])
            .latencies([1, 30])
            .memory_models([
                MemoryModelKind::Flat,
                MemoryModelKind::Banked {
                    banks: 8,
                    bank_busy: 8,
                },
            ])
            .scale(Scale::Quick)
            .threads(1)
    }

    #[test]
    fn machines_round_trip_through_json() {
        for machine in [
            Machine::reference(30),
            Machine::dva(100),
            Machine::byp(1, 4, 8),
            Machine::ideal(),
            Machine::dva(30).with_memory_model(MemoryModelKind::MultiPort { ports: 2 }),
        ] {
            let json = machine_to_json(&machine).unwrap();
            assert_eq!(machine_from_json(&json).unwrap(), machine);
        }
    }

    #[test]
    fn custom_machines_refuse_to_serialize() {
        fn build(program: &dva_isa::Program) -> CustomSim<'_> {
            let _ = program;
            unreachable!("never simulated in this test")
        }
        let custom = Machine::custom("LOCAL", build);
        let err = machine_to_json(&custom).unwrap_err();
        assert!(err.to_string().contains("custom machine"));
        let sweep = sample_sweep().machine(custom);
        assert!(sweep.to_json().is_err());
    }

    #[test]
    fn results_round_trip_for_every_machine_kind() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        for machine in [
            Machine::reference(30),
            Machine::byp(30, 4, 8),
            Machine::ideal(),
        ] {
            let result = machine.simulate(&program);
            let back = SimResult::from_json(&result.to_json()).unwrap();
            assert_eq!(back, result);
            assert_eq!(back.to_json().render(), result.to_json().render());
        }
    }

    #[test]
    fn sweep_specs_and_results_round_trip() {
        let sweep = sample_sweep();
        let spec = sweep.to_json().unwrap();
        let back = Sweep::from_json(&spec).unwrap();
        assert_eq!(back.to_json().unwrap().render(), spec.render());
        // The reconstructed session measures the same grid.
        let ours = sweep.run();
        let theirs = back.run();
        assert_eq!(ours, theirs);

        let json = ours.to_json().unwrap();
        let restored = SweepResults::from_json(&json).unwrap();
        assert_eq!(restored, ours);
        assert_eq!(restored.to_json().unwrap().render(), json.render());
    }

    /// Pins the rendered wire format. If this test fails you changed the
    /// serialization format: bump `dva_engine::ENGINE_VERSION` (stale
    /// disk caches must be discarded) and update the expectation.
    #[test]
    fn golden_wire_format() {
        let machine = Machine::dva(30);
        let json = machine_to_json(&machine).unwrap();
        assert_eq!(
            json.render(),
            "{\"kind\":\"dva\",\"config\":{\
             \"uarch\":{\"fu_startup\":4,\"qmov_startup\":2,\"check_bank_ports\":true},\
             \"memory\":{\"latency\":30,\"cache\":{\"lines\":512,\"line_bytes\":32},\
             \"model\":{\"kind\":\"flat\"}},\
             \"queues\":{\"instruction_queue\":16,\"avdq\":256,\"store_queue\":16,\
             \"scalar_store_queue\":16,\"scalar_data_queue\":256},\
             \"bypass\":false}}"
        );

        let ideal = Machine::ideal()
            .simulate(&Benchmark::Trfd.program(Scale::Quick))
            .to_json();
        let text = ideal.render();
        // The result schema: a core with the documented field order, and
        // a tagged detail.
        let prefix = "{\"core\":{\"cycles\":";
        assert!(text.starts_with(prefix), "got {text}");
        for field in [
            "\"insts\":",
            "\"states\":[",
            "\"traffic\":{\"vector_load_elems\":",
            "\"bus_utilization\":",
            "\"port_utilization\":[",
            "\"cache_hit_rate\":",
            "\"cache\":{\"load_hits\":",
            "\"stall_cycles\":",
            "\"ticks_executed\":",
            "\"detail\":{\"kind\":\"ideal\",\"bound\":{\"fu2_only\":",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn custom_machine_results_still_serialize() {
        // The *machine* is process-local but its measurements are plain
        // data: SimResult::to_json works for custom runs, so a future
        // cache layer could store them (keyed locally).
        let result = SimResult {
            core: ResultCore::untimed(10, 5),
            detail: MachineDetail::Custom {
                occupancy: Some(Histogram::new(2)),
            },
        };
        assert_eq!(SimResult::from_json(&result.to_json()).unwrap(), result);
    }
}
