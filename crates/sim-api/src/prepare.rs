//! Translate-once program preparation and per-worker engine reuse.

use dva_core::{DvaRunner, IdealBound};
use dva_isa::Program;
use dva_ref::RefRunner;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide memo of compiled forms, keyed by the identity of a
/// program's shared instruction storage. Entries keep that storage alive
/// (the compiled form holds the program), so a cached pointer can never
/// be reused by a different allocation while its entry exists; the map
/// is cleared wholesale when it grows past a bound, which keeps
/// workloads that stream unique programs (property tests) from
/// accumulating translations forever.
struct CompiledCache<C> {
    map: OnceLock<Mutex<HashMap<usize, Arc<C>>>>,
}

/// Distinct programs cached before the memo is flushed.
const COMPILED_CACHE_BOUND: usize = 64;

impl<C> CompiledCache<C> {
    const fn new() -> CompiledCache<C> {
        CompiledCache {
            map: OnceLock::new(),
        }
    }

    fn get_or_compile(&self, program: &Program, compile: impl FnOnce(&Program) -> C) -> Arc<C> {
        // A hit is sound by the lifetime argument above: the entry pins
        // the storage behind this pointer, so an equal pointer is the
        // same allocation — and therefore the same instruction stream.
        let key = program.insts().as_ptr() as usize;
        let map = self.map.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(cached) = map.lock().unwrap().get(&key) {
            return Arc::clone(cached);
        }
        // Translate outside the lock; losing a race just compiles twice.
        let compiled = Arc::new(compile(program));
        let mut map = map.lock().unwrap();
        if map.len() >= COMPILED_CACHE_BOUND {
            map.clear();
        }
        map.insert(key, Arc::clone(&compiled));
        compiled
    }
}

static DVA_COMPILED: CompiledCache<dva_core::CompiledProgram> = CompiledCache::new();
static REF_COMPILED: CompiledCache<dva_ref::CompiledProgram> = CompiledCache::new();

/// A program with its per-machine compiled forms, built lazily and at
/// most once each.
///
/// Every machine family consumes a program differently: the decoupled
/// engine replays a µop bundle stream
/// ([`dva_core::CompiledProgram`]), the reference dispatcher replays a
/// decoded issue stream ([`dva_ref::CompiledProgram`]), and the IDEAL
/// bound is a pure function of the trace. A `PreparedProgram` caches all
/// three behind [`OnceLock`]s keyed by this program, so a sweep grid of
/// machines × latencies × memory models pays each translation exactly
/// once — computed on whichever worker thread gets there first and shared
/// by all of them.
///
/// # Examples
///
/// ```
/// use dva_sim_api::{Machine, PreparedProgram, Runners};
/// use dva_workloads::{Benchmark, Scale};
///
/// let program = Benchmark::Trfd.program(Scale::Quick);
/// let prepared = PreparedProgram::new(&program);
/// let mut runners = Runners::new();
/// for latency in [1, 30] {
///     let fast = Machine::dva(latency).simulate_prepared(&prepared, true, &mut runners);
///     assert_eq!(fast, Machine::dva(latency).simulate(&program));
/// }
/// ```
#[derive(Debug)]
pub struct PreparedProgram {
    program: Program,
    dva: OnceLock<Arc<dva_core::CompiledProgram>>,
    reference: OnceLock<Arc<dva_ref::CompiledProgram>>,
    ideal: OnceLock<IdealBound>,
}

impl PreparedProgram {
    /// Prepares `program` (shares its instruction storage; nothing is
    /// compiled until a machine asks).
    pub fn new(program: &Program) -> PreparedProgram {
        PreparedProgram {
            program: program.clone(),
            dva: OnceLock::new(),
            reference: OnceLock::new(),
            ideal: OnceLock::new(),
        }
    }

    /// The source program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The decoupled machine's compiled form: translated on first use,
    /// and shared process-wide — repeated sweeps over the same program
    /// (same instruction storage) reuse one translation.
    pub fn dva(&self) -> &Arc<dva_core::CompiledProgram> {
        self.dva.get_or_init(|| {
            DVA_COMPILED.get_or_compile(&self.program, dva_core::CompiledProgram::compile)
        })
    }

    /// The reference machine's compiled form: decoded on first use, and
    /// shared process-wide like [`dva`](PreparedProgram::dva).
    pub fn reference(&self) -> &Arc<dva_ref::CompiledProgram> {
        self.reference.get_or_init(|| {
            REF_COMPILED.get_or_compile(&self.program, dva_ref::CompiledProgram::compile)
        })
    }

    /// The IDEAL resource bound (computed on first use).
    pub fn ideal(&self) -> IdealBound {
        *self
            .ideal
            .get_or_init(|| dva_core::ideal_bound(&self.program))
    }
}

impl From<&Program> for PreparedProgram {
    fn from(program: &Program) -> PreparedProgram {
        PreparedProgram::new(program)
    }
}

/// One reusable engine per machine family — the per-worker companion of
/// [`PreparedProgram`]: where the prepared program amortizes
/// *translation* across a sweep, the runners amortize *engine
/// allocations*. Each sweep worker thread owns one `Runners` and drives
/// every grid point it claims through it; the engines' reset contract
/// keeps the results byte-identical to fresh construction.
#[derive(Debug, Default)]
pub struct Runners {
    /// The decoupled machine's reusable engine.
    pub dva: DvaRunner,
    /// The reference machine's reusable engine.
    pub reference: RefRunner,
}

impl Runners {
    /// Runners with no engines yet; first use constructs them.
    pub fn new() -> Runners {
        Runners::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_workloads::{Benchmark, Scale};

    #[test]
    fn compiled_forms_are_built_once_and_shared() {
        let program = Benchmark::Trfd.program(Scale::Quick);
        let prepared = PreparedProgram::new(&program);
        let first = Arc::as_ptr(prepared.dva());
        assert_eq!(Arc::as_ptr(prepared.dva()), first, "cached, not rebuilt");
        assert_eq!(
            prepared.reference().program().insts().as_ptr(),
            program.insts().as_ptr(),
            "compiled forms share the trace storage"
        );
        assert_eq!(prepared.ideal(), dva_core::ideal_bound(&program));
    }
}
