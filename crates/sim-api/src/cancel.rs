//! Cooperative cancellation for streaming sweeps.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between the
//! party that wants work stopped (a server noticing its client hung up,
//! a deadline) and the workers doing it. Cancellation is *cooperative*:
//! workers check the token between jobs and between adaptive rounds, so
//! a cancelled sweep stops claiming new work but finishes the points
//! already in flight — simulation state is never corrupted, and every
//! point that is yielded is still byte-identical to an uncancelled run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag with an optional deadline.
///
/// All clones observe the same state: cancelling one cancels them all,
/// and a deadline set at construction trips every clone once it passes.
/// The default token is never cancelled and has no deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that reports cancelled once `budget` has elapsed from
    /// now (and can still be cancelled explicitly before that).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Requests cancellation; observable through every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether work should stop: explicitly cancelled, or past the
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire) || self.deadline_exceeded()
    }

    /// Whether the deadline (if any) has passed — distinguishes "the
    /// client hung up" from "the time budget ran out".
    pub fn deadline_exceeded(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(!clone.deadline_exceeded());
    }

    #[test]
    fn an_expired_deadline_cancels() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(token.is_cancelled());
        assert!(token.deadline_exceeded());
        let patient = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!patient.is_cancelled());
    }
}
