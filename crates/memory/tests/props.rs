//! Property-based tests of the memory system's timing rules.

use dva_isa::VectorLength;
use dva_memory::{CacheAccess, MemoryParams, MemorySystem, ScalarCache, ScalarCacheParams};
use proptest::prelude::*;

fn arb_vl() -> impl Strategy<Value = VectorLength> {
    (1u32..=128).prop_map(|n| VectorLength::new(n).unwrap())
}

proptest! {
    /// Vector load timing always satisfies the paper's formulas: the bus
    /// is held VL cycles, the first element arrives after L, the vector
    /// completes after L + VL.
    #[test]
    fn vector_load_timing_formulas(latency in 1u64..=200, vl in arb_vl(), start in 0u64..10_000) {
        let mut mem = MemorySystem::new(MemoryParams::with_latency(latency));
        let issue = mem.issue_vector_load(start, vl);
        prop_assert_eq!(issue.bus_free_at, start + vl.cycles());
        prop_assert_eq!(issue.data_first_at, start + latency);
        prop_assert_eq!(issue.data_complete_at, start + latency + vl.cycles());
        prop_assert!(!mem.bus_free(start));
        prop_assert!(mem.bus_free(issue.bus_free_at));
    }

    /// Stores hold the bus for VL cycles and never expose latency.
    #[test]
    fn store_timing_is_latency_free(latency in 1u64..=200, vl in arb_vl()) {
        let mut mem = MemorySystem::new(MemoryParams::with_latency(latency));
        let free = mem.issue_vector_store(0, vl);
        prop_assert_eq!(free, vl.cycles());
        prop_assert_eq!(mem.traffic().vector_store_elems, u64::from(vl.get()));
    }

    /// Probe never lies: a probe's answer always matches the access that
    /// immediately follows it.
    #[test]
    fn probe_predicts_access(addrs in proptest::collection::vec(0u64..1 << 20, 1..64)) {
        let mut mem = MemorySystem::new(MemoryParams::default());
        let mut now = 0;
        for addr in addrs {
            let predicted = mem.probe_scalar(addr);
            let issue = mem.scalar_load(now, addr);
            match predicted {
                CacheAccess::Hit => prop_assert_eq!(issue.data_complete_at, now + 1),
                CacheAccess::Miss => {
                    prop_assert_eq!(issue.data_complete_at, now + mem.params().latency)
                }
            }
            now = issue.bus_free_at.max(now) + 1;
        }
    }

    /// The cache is deterministic and its hit+miss counts always equal
    /// the number of accesses.
    #[test]
    fn cache_counts_are_conserved(addrs in proptest::collection::vec(0u64..1 << 16, 0..200)) {
        let mut cache = ScalarCache::new(ScalarCacheParams::default());
        for &a in &addrs {
            let _ = cache.load(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        // Replaying the same stream through a fresh cache gives the same
        // stats.
        let mut cache2 = ScalarCache::new(ScalarCacheParams::default());
        for &a in &addrs {
            let _ = cache2.load(a);
        }
        prop_assert_eq!(cache.hits(), cache2.hits());
    }

    /// Repeating an address immediately always hits.
    #[test]
    fn immediate_reuse_hits(addr in 0u64..1 << 40) {
        let mut cache = ScalarCache::new(ScalarCacheParams::default());
        let _ = cache.load(addr);
        prop_assert_eq!(cache.load(addr), CacheAccess::Hit);
    }

    /// Traffic accounting is additive over a sequence of operations.
    #[test]
    fn traffic_is_additive(ops in proptest::collection::vec((any::<bool>(), arb_vl()), 0..40)) {
        let mut mem = MemorySystem::new(MemoryParams::with_latency(5));
        let mut now = 0u64;
        let (mut loads, mut stores) = (0u64, 0u64);
        for (is_load, vl) in ops {
            if is_load {
                let issue = mem.issue_vector_load(now, vl);
                now = issue.bus_free_at;
                loads += u64::from(vl.get());
            } else {
                now = mem.issue_vector_store(now, vl);
                stores += u64::from(vl.get());
            }
        }
        prop_assert_eq!(mem.traffic().vector_load_elems, loads);
        prop_assert_eq!(mem.traffic().vector_store_elems, stores);
        prop_assert_eq!(mem.bus().busy_cycles(), loads + stores);
    }
}
