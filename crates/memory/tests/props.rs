//! Property-based tests of the memory backends' timing rules.

use dva_isa::{Stride, VectorLength};
use dva_memory::{
    BankedMemory, CacheAccess, FlatMemory, MemoryModel, MemoryModelKind, MemoryParams,
    MultiPortMemory, ScalarCache, ScalarCacheParams,
};
use proptest::prelude::*;

fn arb_vl() -> impl Strategy<Value = VectorLength> {
    (1u32..=128).prop_map(|n| VectorLength::new(n).unwrap())
}

fn arb_stride() -> impl Strategy<Value = Stride> {
    (-32i64..=32).prop_map(Stride::new)
}

proptest! {
    /// Vector load timing always satisfies the paper's formulas: the bus
    /// is held VL cycles, the first element arrives after L, the vector
    /// completes after L + VL.
    #[test]
    fn vector_load_timing_formulas(latency in 1u64..=200, vl in arb_vl(), start in 0u64..10_000) {
        let mut mem = FlatMemory::new(MemoryParams::with_latency(latency));
        let issue = mem.issue_vector_load(start, vl, None);
        prop_assert_eq!(issue.port_free_at, start + vl.cycles());
        prop_assert_eq!(issue.data_first_at, start + latency);
        prop_assert_eq!(issue.data_complete_at, start + latency + vl.cycles());
        prop_assert!(!mem.port_free(start));
        prop_assert!(mem.port_free(issue.port_free_at));
    }

    /// Stores hold the bus for VL cycles and never expose latency.
    #[test]
    fn store_timing_is_latency_free(latency in 1u64..=200, vl in arb_vl()) {
        let mut mem = FlatMemory::new(MemoryParams::with_latency(latency));
        let free = mem.issue_vector_store(0, vl, None);
        prop_assert_eq!(free, vl.cycles());
        prop_assert_eq!(mem.traffic().vector_store_elems, u64::from(vl.get()));
    }

    /// Probe never lies: a probe's answer always matches the access that
    /// immediately follows it.
    #[test]
    fn probe_predicts_access(addrs in proptest::collection::vec(0u64..1 << 20, 1..64)) {
        let mut mem = FlatMemory::new(MemoryParams::default());
        let mut now = 0;
        for addr in addrs {
            let predicted = mem.probe_scalar(addr);
            let issue = mem.scalar_load(now, addr);
            match predicted {
                CacheAccess::Hit => prop_assert_eq!(issue.data_complete_at, now + 1),
                CacheAccess::Miss => {
                    prop_assert_eq!(issue.data_complete_at, now + mem.params().latency)
                }
            }
            now = issue.port_free_at.max(now) + 1;
        }
    }

    /// The cache is deterministic and its hit+miss counts always equal
    /// the number of accesses — loads and stores tallied separately.
    #[test]
    fn cache_counts_are_conserved(
        addrs in proptest::collection::vec((0u64..1 << 16, any::<bool>()), 0..200),
    ) {
        let mut cache = ScalarCache::new(ScalarCacheParams::default());
        let mut loads = 0u64;
        for &(a, is_load) in &addrs {
            if is_load {
                let _ = cache.load(a);
                loads += 1;
            } else {
                let _ = cache.store(a);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert_eq!(stats.load_hits + stats.load_misses, loads);
        prop_assert_eq!(stats.store_hits + stats.store_misses, addrs.len() as u64 - loads);
        // Replaying the same stream through a fresh cache gives the same
        // stats.
        let mut cache2 = ScalarCache::new(ScalarCacheParams::default());
        for &(a, is_load) in &addrs {
            if is_load {
                let _ = cache2.load(a);
            } else {
                let _ = cache2.store(a);
            }
        }
        prop_assert_eq!(cache.stats(), cache2.stats());
    }

    /// Repeating an address immediately always hits.
    #[test]
    fn immediate_reuse_hits(addr in 0u64..1 << 40) {
        let mut cache = ScalarCache::new(ScalarCacheParams::default());
        let _ = cache.load(addr);
        prop_assert_eq!(cache.load(addr), CacheAccess::Hit);
    }

    /// Traffic accounting is additive over a sequence of operations.
    #[test]
    fn traffic_is_additive(ops in proptest::collection::vec((any::<bool>(), arb_vl()), 0..40)) {
        let mut mem = FlatMemory::new(MemoryParams::with_latency(5));
        let mut now = 0u64;
        let (mut loads, mut stores) = (0u64, 0u64);
        for (is_load, vl) in ops {
            if is_load {
                let issue = mem.issue_vector_load(now, vl, None);
                now = issue.port_free_at;
                loads += u64::from(vl.get());
            } else {
                now = mem.issue_vector_store(now, vl, None);
                stores += u64::from(vl.get());
            }
        }
        prop_assert_eq!(mem.traffic().vector_load_elems, loads);
        prop_assert_eq!(mem.traffic().vector_store_elems, stores);
        prop_assert_eq!(mem.ports()[0].busy_cycles(), loads + stores);
    }

    /// A banked access is never faster than flat, exactly `slowdown`
    /// times slower on the bus, and degenerates to flat whenever the
    /// stride touches enough banks (slowdown 1).
    #[test]
    fn banked_never_beats_flat(
        latency in 1u64..=100,
        vl in arb_vl(),
        stride in arb_stride(),
        banks in 1u32..=32,
        bank_busy in 1u64..=32,
    ) {
        let params = MemoryParams::with_latency(latency);
        let mut flat = FlatMemory::new(params);
        let mut banked = BankedMemory::new(params, banks, bank_busy);
        let slowdown = banked.slowdown(Some(stride));
        let f = flat.issue_vector_load(0, vl, Some(stride));
        let b = banked.issue_vector_load(0, vl, Some(stride));
        prop_assert!(slowdown >= 1);
        prop_assert!(slowdown <= bank_busy);
        prop_assert_eq!(b.port_free_at, vl.cycles() * slowdown);
        prop_assert!(b.port_free_at >= f.port_free_at);
        prop_assert!(b.data_complete_at >= f.data_complete_at);
        prop_assert_eq!(b.data_first_at, f.data_first_at);
        if slowdown == 1 {
            prop_assert_eq!(b, f);
        }
    }

    /// A one-port multi-port memory is the flat memory, access for
    /// access.
    #[test]
    fn single_port_multiport_is_flat(
        latency in 1u64..=100,
        ops in proptest::collection::vec((any::<bool>(), arb_vl()), 1..20),
    ) {
        let params = MemoryParams::with_latency(latency)
            .with_model(MemoryModelKind::MultiPort { ports: 1 });
        let mut multi = MultiPortMemory::new(params, 1);
        let mut flat = FlatMemory::new(MemoryParams::with_latency(latency));
        let mut now = 0u64;
        for (is_load, vl) in ops {
            if is_load {
                let a = multi.issue_vector_load(now, vl, None);
                let b = flat.issue_vector_load(now, vl, None);
                prop_assert_eq!(a, b);
                now = a.port_free_at;
            } else {
                let a = multi.issue_vector_store(now, vl, None);
                let b = flat.issue_vector_store(now, vl, None);
                prop_assert_eq!(a, b);
                now = a;
            }
            prop_assert_eq!(multi.next_free_at(0), flat.next_free_at(0));
            prop_assert_eq!(multi.quiesce_at(), flat.quiesce_at());
        }
        prop_assert_eq!(multi.traffic(), flat.traffic());
    }
}
