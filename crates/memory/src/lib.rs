//! Memory subsystem models for the *Decoupled Vector Architectures*
//! reproduction.
//!
//! The paper's memory model (Section 4.2) has:
//!
//! * a **single pipelined memory port** shared by all accesses, modeled as
//!   a common shared [`AddressBus`] plus physically separate data paths for
//!   loads and stores;
//! * a configurable **memory latency** `L`: the first element of a load
//!   arrives `L` cycles after its address issues, while stores never expose
//!   latency to the processor;
//! * a small **scalar cache** that holds only scalar data — vector accesses
//!   go directly to main memory.
//!
//! That model is the [`FlatMemory`] backend of a *pluggable* layer: both
//! simulators issue every access through the [`MemoryModel`] trait, and
//! [`MemoryParams::build`] instantiates whichever [`MemoryModelKind`] the
//! configuration names —
//!
//! | backend | timing rule |
//! |---|---|
//! | [`FlatMemory`] | one port; a length-`VL` access holds it `VL` cycles |
//! | [`BankedMemory`] | one port over `banks` interleaved banks; strides that revisit a busy bank throttle the stream |
//! | [`MultiPortMemory`] | `N` independent ports; accesses arbitrate for the first free one |
//!
//! so bank conflicts and extra memory ports become sweep axes without
//! either engine changing.
//!
//! # Examples
//!
//! ```
//! use dva_memory::{MemoryModelKind, MemoryParams};
//! use dva_isa::VectorLength;
//!
//! let mut mem = MemoryParams::with_latency(30).build(); // flat by default
//! let vl = VectorLength::new(64).unwrap();
//! let issue = mem.issue_vector_load(0, vl, None);
//! assert_eq!(issue.port_free_at, 64);     // bus held for VL cycles
//! assert_eq!(issue.data_complete_at, 94); // L + VL
//!
//! let banked = MemoryParams::with_latency(30)
//!     .with_model(MemoryModelKind::Banked { banks: 8, bank_busy: 8 });
//! assert_eq!(banked.build().params().latency, 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backends;
mod bus;
mod cache;
mod model;

pub use backends::{BankedMemory, FlatMemory, Memory, MultiPortMemory};
pub use bus::AddressBus;
pub use cache::{CacheAccess, ScalarCache, ScalarCacheParams};
pub use model::{LoadIssue, MemoryModel, MemoryModelKind, MemoryParams};
