//! Memory subsystem model for the *Decoupled Vector Architectures*
//! reproduction.
//!
//! The paper's memory model (Section 4.2) has:
//!
//! * a **single pipelined memory port** shared by all accesses, modeled as
//!   a common shared [`AddressBus`] plus physically separate data paths for
//!   loads and stores;
//! * a configurable **memory latency** `L`: the first element of a load
//!   arrives `L` cycles after its address issues, while stores never expose
//!   latency to the processor;
//! * a small **scalar cache** that holds only scalar data — vector accesses
//!   go directly to main memory.
//!
//! [`MemorySystem`] packages these pieces together with traffic counters so
//! the two simulators share identical timing rules.
//!
//! # Examples
//!
//! ```
//! use dva_memory::{MemoryParams, MemorySystem};
//! use dva_isa::VectorLength;
//!
//! let mut mem = MemorySystem::new(MemoryParams::with_latency(30));
//! let vl = VectorLength::new(64).unwrap();
//! let issue = mem.issue_vector_load(0, vl);
//! assert_eq!(issue.bus_free_at, 64);      // bus held for VL cycles
//! assert_eq!(issue.data_complete_at, 94); // L + VL
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod system;

pub use bus::AddressBus;
pub use cache::{CacheAccess, ScalarCache, ScalarCacheParams};
pub use system::{LoadIssue, MemoryParams, MemorySystem};
