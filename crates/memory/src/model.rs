//! The pluggable memory-model layer: [`MemoryParams`], the
//! [`MemoryModelKind`] axis, and the [`MemoryModel`] trait both engines
//! issue their accesses through.

use crate::backends::{BankedMemory, FlatMemory, MultiPortMemory};
use crate::bus::AddressBus;
use crate::cache::{CacheAccess, ScalarCache, ScalarCacheParams};
use dva_isa::{Cycle, Stride, VectorLength};
use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_metrics::Traffic;
use std::fmt;

/// Which main-memory timing backend a machine runs against.
///
/// The paper's model (Section 4.2) is [`Flat`](MemoryModelKind::Flat):
/// one address bus, one uniform latency `L`. The other kinds generalize
/// exactly the two assumptions decoupling leans on — that a vector
/// access always streams at one element per cycle, and that there is
/// exactly one memory port to fight over:
///
/// * [`Banked`](MemoryModelKind::Banked) interleaves main memory over
///   `banks` banks; a non-unit stride can revisit a bank before it is
///   ready and throttle the stream (see [`BankedMemory`] for the exact
///   rule).
/// * [`MultiPort`](MemoryModelKind::MultiPort) provides `ports`
///   independent address buses; accesses arbitrate for the first free
///   one (see [`MultiPortMemory`]).
///
/// # Examples
///
/// ```
/// use dva_memory::MemoryModelKind;
/// assert_eq!(MemoryModelKind::default(), MemoryModelKind::Flat);
/// assert_eq!(MemoryModelKind::Flat.label(), "flat");
/// assert_eq!(MemoryModelKind::Banked { banks: 8, bank_busy: 8 }.label(), "banked8x8");
/// assert_eq!(MemoryModelKind::MultiPort { ports: 2 }.label(), "2-port");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModelKind {
    /// The paper's single-ported, conflict-free memory: a vector access
    /// of length `VL` holds the one address bus for exactly `VL` cycles.
    Flat,
    /// Interleaved main memory: `banks` banks, each able to accept a new
    /// access only every `bank_busy` cycles. Stride-aware — unit strides
    /// stream at full speed, strides that are a multiple of the bank
    /// count serialize on one bank.
    Banked {
        /// Number of interleaved banks (> 0).
        banks: u32,
        /// Cycles a bank is busy after accepting an access (> 0).
        bank_busy: u64,
    },
    /// `ports` independent address buses; loads and stores arbitrate for
    /// the first free one.
    MultiPort {
        /// Number of address ports (> 0).
        ports: u32,
    },
}

impl Default for MemoryModelKind {
    /// The paper's flat model.
    fn default() -> Self {
        MemoryModelKind::Flat
    }
}

impl MemoryModelKind {
    /// A short display label, used as the memory axis of sweep tables:
    /// `flat`, `banked8x8`, `2-port`.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for MemoryModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryModelKind::Flat => write!(f, "flat"),
            MemoryModelKind::Banked { banks, bank_busy } => {
                write!(f, "banked{banks}x{bank_busy}")
            }
            MemoryModelKind::MultiPort { ports } => write!(f, "{ports}-port"),
        }
    }
}

/// Memory system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryParams {
    /// Main memory latency `L` in cycles: the delay from an address issuing
    /// on the bus to the first data element arriving at the processor. The
    /// paper sweeps this from 1 to 100.
    pub latency: u64,
    /// Scalar cache geometry.
    pub cache: ScalarCacheParams,
    /// Which timing backend [`MemoryParams::build`] instantiates.
    pub model: MemoryModelKind,
}

impl MemoryParams {
    /// Parameters with the given latency, the default cache and the flat
    /// memory model.
    pub fn with_latency(latency: u64) -> MemoryParams {
        MemoryParams {
            latency,
            cache: ScalarCacheParams::default(),
            model: MemoryModelKind::Flat,
        }
    }

    /// These parameters with the memory model replaced.
    #[must_use]
    pub fn with_model(mut self, model: MemoryModelKind) -> MemoryParams {
        self.model = model;
        self
    }

    /// Instantiates the configured backend.
    ///
    /// ```
    /// use dva_memory::{MemoryModelKind, MemoryParams};
    /// let flat = MemoryParams::with_latency(30).build();
    /// assert_eq!(flat.ports().len(), 1);
    /// let two = MemoryParams::with_latency(30)
    ///     .with_model(MemoryModelKind::MultiPort { ports: 2 })
    ///     .build();
    /// assert_eq!(two.ports().len(), 2);
    /// ```
    pub fn build(&self) -> Box<dyn MemoryModel> {
        match self.model {
            MemoryModelKind::Flat => Box::new(FlatMemory::new(*self)),
            MemoryModelKind::Banked { banks, bank_busy } => {
                Box::new(BankedMemory::new(*self, banks, bank_busy))
            }
            MemoryModelKind::MultiPort { ports } => Box::new(MultiPortMemory::new(*self, ports)),
        }
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams::with_latency(1)
    }
}

impl ToJson for MemoryModelKind {
    /// A tagged object: `{"kind":"flat"}`, `{"kind":"banked",...}` or
    /// `{"kind":"multiport",...}`.
    fn to_json(&self) -> Json {
        match self {
            MemoryModelKind::Flat => Json::obj([("kind", Json::from("flat"))]),
            MemoryModelKind::Banked { banks, bank_busy } => Json::obj([
                ("kind", Json::from("banked")),
                ("banks", Json::from(*banks)),
                ("bank_busy", Json::from(*bank_busy)),
            ]),
            MemoryModelKind::MultiPort { ports } => Json::obj([
                ("kind", Json::from("multiport")),
                ("ports", Json::from(*ports)),
            ]),
        }
    }
}

impl FromJson for MemoryModelKind {
    fn from_json(json: &Json) -> Result<MemoryModelKind, JsonError> {
        match json.field("kind")?.as_str()? {
            "flat" => Ok(MemoryModelKind::Flat),
            "banked" => Ok(MemoryModelKind::Banked {
                banks: u32::try_from(json.field("banks")?.as_u64()?)
                    .map_err(|_| JsonError::msg("bank count out of range"))?,
                bank_busy: json.field("bank_busy")?.as_u64()?,
            }),
            "multiport" => Ok(MemoryModelKind::MultiPort {
                ports: u32::try_from(json.field("ports")?.as_u64()?)
                    .map_err(|_| JsonError::msg("port count out of range"))?,
            }),
            other => Err(JsonError(format!("unknown memory model kind `{other}`"))),
        }
    }
}

impl ToJson for ScalarCacheParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lines", Json::from(self.lines)),
            ("line_bytes", Json::from(self.line_bytes)),
        ])
    }
}

impl FromJson for ScalarCacheParams {
    fn from_json(json: &Json) -> Result<ScalarCacheParams, JsonError> {
        Ok(ScalarCacheParams {
            lines: json.field("lines")?.as_usize()?,
            line_bytes: json.field("line_bytes")?.as_usize()?,
        })
    }
}

impl ToJson for MemoryParams {
    fn to_json(&self) -> Json {
        Json::obj([
            ("latency", Json::from(self.latency)),
            ("cache", self.cache.to_json()),
            ("model", self.model.to_json()),
        ])
    }
}

impl FromJson for MemoryParams {
    fn from_json(json: &Json) -> Result<MemoryParams, JsonError> {
        Ok(MemoryParams {
            latency: json.field("latency")?.as_u64()?,
            cache: ScalarCacheParams::from_json(json.field("cache")?)?,
            model: MemoryModelKind::from_json(json.field("model")?)?,
        })
    }
}

/// Timing of an issued load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadIssue {
    /// When the address port the access won becomes free again.
    pub port_free_at: Cycle,
    /// When the first element reaches the processor.
    pub data_first_at: Cycle,
    /// When the last element has arrived (a vector register or AVDQ slot is
    /// complete and consumable — the model never chains off memory).
    pub data_complete_at: Cycle,
}

/// A main-memory timing backend: address-port arbitration, the latency
/// model, the scalar cache and traffic accounting.
///
/// Both the reference and the decoupled simulators issue every access
/// through this trait, so their memory timing rules are identical by
/// construction — and swapping the backend changes *both* machines'
/// memory behavior at once. Backends are built from
/// [`MemoryParams::build`].
///
/// The trait deliberately mirrors what the engines need and nothing
/// more: issue hooks ([`issue_vector_load`](MemoryModel::issue_vector_load),
/// [`issue_vector_store`](MemoryModel::issue_vector_store),
/// [`scalar_load`](MemoryModel::scalar_load),
/// [`scalar_store`](MemoryModel::scalar_store)), non-mutating probes
/// ([`port_free`](MemoryModel::port_free),
/// [`probe_scalar`](MemoryModel::probe_scalar)), the next-event hooks
/// fast-forward relies on ([`next_free_at`](MemoryModel::next_free_at),
/// [`quiesce_at`](MemoryModel::quiesce_at)), and the measurement hooks
/// ([`traffic`](MemoryModel::traffic), [`cache`](MemoryModel::cache),
/// [`ports`](MemoryModel::ports)).
pub trait MemoryModel: fmt::Debug + Send {
    /// The configured parameters.
    fn params(&self) -> MemoryParams;

    /// Whether a new access can issue at `now` (at least one address
    /// port is free).
    fn port_free(&self, now: Cycle) -> bool;

    /// Whether any address port is mid-transfer at `now` (the `LD` flag
    /// of the paper's Figure 1 state tuple).
    fn busy(&self, now: Cycle) -> bool;

    /// The earliest cycle strictly after `now` at which any address
    /// port frees — the memory system's contribution to the engines'
    /// next-event (fast-forward) computation, or `None` when every port
    /// is already quiet. Every port freeing is an event: it can flip
    /// both the issue gate ([`port_free`](MemoryModel::port_free)) and
    /// the sampled busy flag ([`busy`](MemoryModel::busy)), and the two
    /// flip at *different* ports' free times on a multi-ported memory.
    fn next_free_at(&self, now: Cycle) -> Option<Cycle>;

    /// The cycle at which *every* address port is free — the memory
    /// system's contribution to the engines' post-completion drain.
    fn quiesce_at(&self) -> Cycle;

    /// Issues a vector load of length `vl` at cycle `now`. `stride` is
    /// the access's element stride, `None` for indexed (gather)
    /// accesses; only stride-aware backends read it.
    ///
    /// # Panics
    ///
    /// Panics if no port is free at `now`; callers gate on
    /// [`MemoryModel::port_free`].
    fn issue_vector_load(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        stride: Option<Stride>,
    ) -> LoadIssue;

    /// Issues a vector store of length `vl` at cycle `now`, returning
    /// when its port frees. Stores never expose memory latency to the
    /// processor (paper, Section 4.2).
    ///
    /// # Panics
    ///
    /// Panics if no port is free at `now`.
    fn issue_vector_store(&mut self, now: Cycle, vl: VectorLength, stride: Option<Stride>)
        -> Cycle;

    /// Checks whether a scalar load would hit in the cache without
    /// updating any state.
    fn probe_scalar(&self, addr: u64) -> CacheAccess;

    /// Performs a scalar load at cycle `now`.
    ///
    /// On a hit the access completes next cycle without touching any
    /// port. On a miss a port is held for one cycle and the data arrives
    /// after the memory latency.
    ///
    /// # Panics
    ///
    /// Panics if the access misses while no port is free; callers must
    /// gate on [`MemoryModel::port_free`] when
    /// [`MemoryModel::probe_scalar`] reports a miss.
    fn scalar_load(&mut self, now: Cycle, addr: u64) -> LoadIssue;

    /// Performs a scalar store at cycle `now` (write-through: always one
    /// port cycle of traffic), returning when its port frees.
    ///
    /// # Panics
    ///
    /// Panics if no port is free at `now`.
    fn scalar_store(&mut self, now: Cycle, addr: u64) -> Cycle;

    /// Records a vector load satisfied entirely by the store→load bypass:
    /// no port usage, no memory traffic.
    fn record_bypass(&mut self, vl: VectorLength);

    /// Traffic counters accumulated so far.
    fn traffic(&self) -> Traffic;

    /// The scalar cache (for hit-rate reporting).
    fn cache(&self) -> &ScalarCache;

    /// The address ports, in arbitration order (for utilization
    /// reporting; flat and banked memories have exactly one).
    fn ports(&self) -> &[AddressBus];

    /// Mean port utilization over `total` elapsed cycles (0..=1) — for a
    /// single-ported backend, exactly the old address-bus utilization.
    fn utilization(&self, total: Cycle) -> f64 {
        let ports = self.ports();
        if ports.is_empty() {
            0.0
        } else {
            ports.iter().map(|p| p.utilization(total)).sum::<f64>() / ports.len() as f64
        }
    }

    /// Per-port utilization over `total` elapsed cycles, in arbitration
    /// order.
    fn port_utilizations(&self, total: Cycle) -> Vec<f64> {
        self.ports().iter().map(|p| p.utilization(total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(MemoryModelKind::Flat.label(), "flat");
        assert_eq!(
            MemoryModelKind::Banked {
                banks: 16,
                bank_busy: 4
            }
            .label(),
            "banked16x4"
        );
        assert_eq!(MemoryModelKind::MultiPort { ports: 4 }.label(), "4-port");
    }

    #[test]
    fn memory_configuration_round_trips_through_json() {
        for model in [
            MemoryModelKind::Flat,
            MemoryModelKind::Banked {
                banks: 16,
                bank_busy: 4,
            },
            MemoryModelKind::MultiPort { ports: 3 },
        ] {
            assert_eq!(MemoryModelKind::from_json(&model.to_json()).unwrap(), model);
            let params = MemoryParams::with_latency(70).with_model(model);
            assert_eq!(MemoryParams::from_json(&params.to_json()).unwrap(), params);
        }
        assert!(MemoryModelKind::from_json(&Json::obj([("kind", Json::from("warp"))])).is_err());
    }

    #[test]
    fn params_default_to_the_flat_model() {
        assert_eq!(MemoryParams::default().model, MemoryModelKind::Flat);
        assert_eq!(MemoryParams::with_latency(50).model, MemoryModelKind::Flat);
    }

    #[test]
    fn build_dispatches_on_the_kind() {
        let banked = MemoryParams::with_latency(1).with_model(MemoryModelKind::Banked {
            banks: 8,
            bank_busy: 8,
        });
        assert_eq!(banked.build().ports().len(), 1);
        let multi =
            MemoryParams::with_latency(1).with_model(MemoryModelKind::MultiPort { ports: 3 });
        assert_eq!(multi.build().ports().len(), 3);
    }
}
