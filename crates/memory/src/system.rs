//! The combined memory system used by both simulators.

use crate::bus::AddressBus;
use crate::cache::{CacheAccess, ScalarCache, ScalarCacheParams};
use dva_isa::{Cycle, VectorLength};
use dva_metrics::Traffic;

/// Memory system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryParams {
    /// Main memory latency `L` in cycles: the delay from an address issuing
    /// on the bus to the first data element arriving at the processor. The
    /// paper sweeps this from 1 to 100.
    pub latency: u64,
    /// Scalar cache geometry.
    pub cache: ScalarCacheParams,
}

impl MemoryParams {
    /// Parameters with the given latency and the default cache.
    pub fn with_latency(latency: u64) -> MemoryParams {
        MemoryParams {
            latency,
            cache: ScalarCacheParams::default(),
        }
    }
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams::with_latency(1)
    }
}

/// Timing of an issued load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadIssue {
    /// When the address bus becomes free again.
    pub bus_free_at: Cycle,
    /// When the first element reaches the processor.
    pub data_first_at: Cycle,
    /// When the last element has arrived (a vector register or AVDQ slot is
    /// complete and consumable — the model never chains off memory).
    pub data_complete_at: Cycle,
}

/// The single-ported memory system: address bus, latency model, scalar
/// cache and traffic accounting.
///
/// Both the reference and the decoupled simulators call into this type so
/// their memory timing rules are identical by construction.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    params: MemoryParams,
    bus: AddressBus,
    cache: ScalarCache,
    traffic: Traffic,
}

impl MemorySystem {
    /// Creates a memory system.
    pub fn new(params: MemoryParams) -> MemorySystem {
        MemorySystem {
            params,
            bus: AddressBus::new(),
            cache: ScalarCache::new(params.cache),
            traffic: Traffic::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> MemoryParams {
        self.params
    }

    /// Whether the address bus is free at `now`.
    pub fn bus_free(&self, now: Cycle) -> bool {
        self.bus.is_free(now)
    }

    /// The first cycle at which the address bus becomes free — the memory
    /// system's contribution to the engines' next-event (fast-forward)
    /// computation.
    pub fn bus_free_at(&self) -> Cycle {
        self.bus.free_at()
    }

    /// The shared address bus (for utilization reporting).
    pub fn bus(&self) -> &AddressBus {
        &self.bus
    }

    /// Issues a vector load of length `vl` at cycle `now`.
    ///
    /// The bus is held for `VL` cycles; the first element arrives after the
    /// memory latency `L` and the vector is complete `L + VL` cycles after
    /// issue.
    ///
    /// # Panics
    ///
    /// Panics if the bus is busy at `now`.
    pub fn issue_vector_load(&mut self, now: Cycle, vl: VectorLength) -> LoadIssue {
        let bus_free_at = self.bus.reserve(now, vl.cycles());
        self.traffic.vector_load_elems += u64::from(vl.get());
        LoadIssue {
            bus_free_at,
            data_first_at: now + self.params.latency,
            data_complete_at: now + self.params.latency + vl.cycles(),
        }
    }

    /// Issues a vector store of length `vl` at cycle `now`, returning when
    /// the bus frees. Stores never expose memory latency to the processor
    /// (paper, Section 4.2).
    ///
    /// # Panics
    ///
    /// Panics if the bus is busy at `now`.
    pub fn issue_vector_store(&mut self, now: Cycle, vl: VectorLength) -> Cycle {
        let bus_free_at = self.bus.reserve(now, vl.cycles());
        self.traffic.vector_store_elems += u64::from(vl.get());
        bus_free_at
    }

    /// Checks whether a scalar load would hit in the cache without updating
    /// any state.
    pub fn probe_scalar(&self, addr: u64) -> CacheAccess {
        self.cache.probe(addr)
    }

    /// Performs a scalar load at cycle `now`.
    ///
    /// On a hit the access completes next cycle without touching the bus.
    /// On a miss the bus is held for one cycle and the data arrives after
    /// the memory latency.
    ///
    /// # Panics
    ///
    /// Panics if the access misses while the bus is busy; callers must gate
    /// on [`MemorySystem::bus_free`] when [`MemorySystem::probe_scalar`]
    /// reports a miss.
    pub fn scalar_load(&mut self, now: Cycle, addr: u64) -> LoadIssue {
        match self.cache.load(addr) {
            CacheAccess::Hit => LoadIssue {
                bus_free_at: now,
                data_first_at: now + 1,
                data_complete_at: now + 1,
            },
            CacheAccess::Miss => {
                let bus_free_at = self.bus.reserve(now, 1);
                self.traffic.scalar_load_words += 1;
                LoadIssue {
                    bus_free_at,
                    data_first_at: now + self.params.latency,
                    data_complete_at: now + self.params.latency,
                }
            }
        }
    }

    /// Performs a scalar store at cycle `now` (write-through: always one
    /// bus cycle of traffic), returning when the bus frees.
    ///
    /// # Panics
    ///
    /// Panics if the bus is busy at `now`.
    pub fn scalar_store(&mut self, now: Cycle, addr: u64) -> Cycle {
        let _ = self.cache.store(addr);
        let bus_free_at = self.bus.reserve(now, 1);
        self.traffic.scalar_store_words += 1;
        bus_free_at
    }

    /// Records a vector load satisfied entirely by the store→load bypass:
    /// no bus usage, no memory traffic.
    pub fn record_bypass(&mut self, vl: VectorLength) {
        self.traffic.bypassed_elems += u64::from(vl.get());
        self.traffic.bypassed_loads += 1;
    }

    /// Traffic counters accumulated so far.
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// The scalar cache (for hit-rate reporting).
    pub fn cache(&self) -> &ScalarCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_testutil::vl;

    #[test]
    fn vector_load_timing_follows_the_paper() {
        let mut mem = MemorySystem::new(MemoryParams::with_latency(50));
        let issue = mem.issue_vector_load(100, vl(32));
        assert_eq!(issue.bus_free_at, 132);
        assert_eq!(issue.data_first_at, 150);
        assert_eq!(issue.data_complete_at, 182);
        assert_eq!(mem.traffic().vector_load_elems, 32);
    }

    #[test]
    fn stores_hold_bus_but_hide_latency() {
        let mut mem = MemorySystem::new(MemoryParams::with_latency(100));
        let free = mem.issue_vector_store(0, vl(16));
        assert_eq!(free, 16);
        assert_eq!(mem.traffic().vector_store_elems, 16);
    }

    #[test]
    fn scalar_hit_avoids_bus_and_traffic() {
        let mut mem = MemorySystem::new(MemoryParams::with_latency(40));
        let miss = mem.scalar_load(0, 0x80);
        assert_eq!(miss.data_complete_at, 40);
        assert_eq!(mem.traffic().scalar_load_words, 1);
        // Second access to the same line hits: 1-cycle, no traffic.
        let hit = mem.scalar_load(50, 0x88);
        assert_eq!(hit.data_complete_at, 51);
        assert_eq!(hit.bus_free_at, 50);
        assert_eq!(mem.traffic().scalar_load_words, 1);
    }

    #[test]
    fn probe_matches_subsequent_load() {
        let mut mem = MemorySystem::new(MemoryParams::default());
        assert_eq!(mem.probe_scalar(0x100), CacheAccess::Miss);
        mem.scalar_load(0, 0x100);
        assert_eq!(mem.probe_scalar(0x100), CacheAccess::Hit);
    }

    #[test]
    fn bypass_counts_requests_without_traffic() {
        let mut mem = MemorySystem::new(MemoryParams::default());
        mem.record_bypass(vl(128));
        assert_eq!(mem.traffic().memory_elems(), 0);
        assert_eq!(mem.traffic().bypassed_elems, 128);
        assert_eq!(mem.traffic().bypassed_loads, 1);
    }
}
