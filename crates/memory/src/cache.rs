//! The scalar data cache.
//!
//! In both architectures scalar memory accesses go through a small cache
//! that holds only scalar data; vector accesses bypass it entirely (paper,
//! Section 4.2). The cache is also one of the five resources of the IDEAL
//! lower-bound model.

use dva_metrics::CacheStats;
use std::fmt;

/// Configuration of the direct-mapped scalar cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarCacheParams {
    /// Number of cache lines (must be a power of two).
    pub lines: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl Default for ScalarCacheParams {
    /// A 16 KiB direct-mapped cache with 32-byte lines, in the spirit of
    /// early-1990s vector machines' scalar caches.
    fn default() -> Self {
        ScalarCacheParams {
            lines: 512,
            line_bytes: 32,
        }
    }
}

/// The outcome of a scalar cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present; the access completes in one cycle and does not
    /// use the memory port.
    Hit,
    /// The line was absent; the access must use the memory port and pays
    /// the memory latency.
    Miss,
}

/// A direct-mapped write-through scalar cache model.
///
/// Only tags are modeled — the simulators never need data values, only
/// hit/miss timing.
///
/// # Examples
///
/// ```
/// use dva_memory::{CacheAccess, ScalarCache};
/// let mut cache = ScalarCache::default();
/// assert_eq!(cache.load(0x1000), CacheAccess::Miss);
/// assert_eq!(cache.load(0x1008), CacheAccess::Hit); // same 32-byte line
/// ```
#[derive(Debug, Clone)]
pub struct ScalarCache {
    params: ScalarCacheParams,
    tags: Vec<Option<u64>>,
    stats: CacheStats,
}

impl Default for ScalarCache {
    fn default() -> Self {
        ScalarCache::new(ScalarCacheParams::default())
    }
}

impl ScalarCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless both `lines` and `line_bytes` are non-zero powers of
    /// two.
    pub fn new(params: ScalarCacheParams) -> ScalarCache {
        assert!(
            params.lines.is_power_of_two() && params.line_bytes.is_power_of_two(),
            "cache geometry must be powers of two"
        );
        ScalarCache {
            params,
            tags: vec![None; params.lines],
            stats: CacheStats::default(),
        }
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.params.line_bytes as u64;
        let index = (line as usize) & (self.params.lines - 1);
        (index, line)
    }

    /// Non-mutating variant of [`ScalarCache::load`]: reports what a load
    /// of `addr` would do without updating tags or statistics.
    pub fn probe(&self, addr: u64) -> CacheAccess {
        let (index, tag) = self.index_and_tag(addr);
        if self.tags[index] == Some(tag) {
            CacheAccess::Hit
        } else {
            CacheAccess::Miss
        }
    }

    /// Performs a scalar load, filling the line on a miss.
    pub fn load(&mut self, addr: u64) -> CacheAccess {
        let (index, tag) = self.index_and_tag(addr);
        if self.tags[index] == Some(tag) {
            self.stats.load_hits += 1;
            CacheAccess::Hit
        } else {
            self.tags[index] = Some(tag);
            self.stats.load_misses += 1;
            CacheAccess::Miss
        }
    }

    /// Performs a scalar store. The cache is write-through/write-allocate:
    /// the store always generates memory traffic, but it installs the line
    /// so that later loads hit.
    pub fn store(&mut self, addr: u64) -> CacheAccess {
        let (index, tag) = self.index_and_tag(addr);
        let access = if self.tags[index] == Some(tag) {
            self.stats.store_hits += 1;
            CacheAccess::Hit
        } else {
            self.stats.store_misses += 1;
            CacheAccess::Miss
        };
        self.tags[index] = Some(tag);
        access
    }

    /// Invalidates all lines.
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Total hits observed (loads and stores combined).
    pub fn hits(&self) -> u64 {
        self.stats.hits()
    }

    /// Total misses observed (loads and stores combined).
    pub fn misses(&self) -> u64 {
        self.stats.misses()
    }

    /// Hit rate over all accesses (0..=1), 0 when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// The full hit/miss statistics, split by access kind — store
    /// outcomes are recorded too, not discarded at the memory-system
    /// boundary.
    ///
    /// ```
    /// use dva_memory::ScalarCache;
    /// let mut cache = ScalarCache::default();
    /// cache.store(0x40); // miss, installs the line
    /// cache.load(0x48); // hits the installed line
    /// let stats = cache.stats();
    /// assert_eq!(stats.store_misses, 1);
    /// assert_eq!(stats.load_hits, 1);
    /// ```
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configured geometry.
    pub fn params(&self) -> ScalarCacheParams {
        self.params
    }
}

impl fmt::Display for ScalarCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scalar cache: {} hits, {} misses ({:.1}% hit rate)",
            self.hits(),
            self.misses(),
            100.0 * self.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_to_same_line_hits() {
        let mut c = ScalarCache::default();
        assert_eq!(c.load(0x40), CacheAccess::Miss);
        assert_eq!(c.load(0x40), CacheAccess::Hit);
        assert_eq!(c.load(0x5f), CacheAccess::Hit); // same 32B line
        assert_eq!(c.load(0x60), CacheAccess::Miss); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_lines_evict_each_other() {
        let params = ScalarCacheParams {
            lines: 4,
            line_bytes: 32,
        };
        let mut c = ScalarCache::new(params);
        let a = 0u64;
        let b = (4 * 32) as u64; // maps to the same index
        assert_eq!(c.load(a), CacheAccess::Miss);
        assert_eq!(c.load(b), CacheAccess::Miss);
        assert_eq!(c.load(a), CacheAccess::Miss); // evicted by b
    }

    #[test]
    fn store_installs_line_for_later_loads() {
        let mut c = ScalarCache::default();
        assert_eq!(c.store(0x100), CacheAccess::Miss);
        assert_eq!(c.load(0x100), CacheAccess::Hit);
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut c = ScalarCache::default();
        c.load(0x100);
        c.flush();
        assert_eq!(c.load(0x100), CacheAccess::Miss);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_geometry_rejected() {
        let _ = ScalarCache::new(ScalarCacheParams {
            lines: 3,
            line_bytes: 32,
        });
    }
}
