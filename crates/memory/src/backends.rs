//! The three [`MemoryModel`] backends: flat, banked and multi-ported.

use crate::bus::AddressBus;
use crate::cache::{CacheAccess, ScalarCache};
use crate::model::{LoadIssue, MemoryModel, MemoryModelKind, MemoryParams};
use dva_isa::{Cycle, Stride, VectorLength};
use dva_metrics::Traffic;

/// The state every backend shares: the configured parameters, the
/// address ports, the scalar cache and the traffic counters. Backends
/// differ only in how many ports they expose and how long a vector
/// access holds its port.
#[derive(Debug, Clone)]
struct MemCore {
    params: MemoryParams,
    ports: Vec<AddressBus>,
    cache: ScalarCache,
    traffic: Traffic,
}

impl MemCore {
    fn new(params: MemoryParams, ports: usize) -> MemCore {
        assert!(ports > 0, "a memory backend needs at least one port");
        MemCore {
            params,
            ports: vec![AddressBus::new(); ports],
            cache: ScalarCache::new(params.cache),
            traffic: Traffic::default(),
        }
    }

    #[inline]
    fn port_free(&self, now: Cycle) -> bool {
        self.ports.iter().any(|p| p.is_free(now))
    }

    #[inline]
    fn busy(&self, now: Cycle) -> bool {
        self.ports.iter().any(|p| !p.is_free(now))
    }

    #[inline]
    fn next_free_at(&self, now: Cycle) -> Option<Cycle> {
        self.ports
            .iter()
            .map(AddressBus::free_at)
            .filter(|&t| t > now)
            .min()
    }

    fn quiesce_at(&self) -> Cycle {
        self.ports
            .iter()
            .map(AddressBus::free_at)
            .max()
            .unwrap_or(0)
    }

    /// Reserves the first free port for `cycles` cycles.
    fn reserve(&mut self, now: Cycle, cycles: u64) -> Cycle {
        let ports = self.ports.len();
        let port = self
            .ports
            .iter_mut()
            .find(|p| p.is_free(now))
            .unwrap_or_else(|| panic!("all {ports} address port(s) busy at cycle {now}"));
        port.reserve(now, cycles)
    }

    /// Issues a vector load whose addresses occupy a port for `hold`
    /// cycles (`hold == VL` when conflict-free). The last element lands
    /// one latency after the last address issues.
    fn vector_load(&mut self, now: Cycle, vl: VectorLength, hold: u64) -> LoadIssue {
        let port_free_at = self.reserve(now, hold);
        self.traffic.vector_load_elems += u64::from(vl.get());
        LoadIssue {
            port_free_at,
            data_first_at: now + self.params.latency,
            data_complete_at: now + self.params.latency + hold,
        }
    }

    fn vector_store(&mut self, now: Cycle, vl: VectorLength, hold: u64) -> Cycle {
        let port_free_at = self.reserve(now, hold);
        self.traffic.vector_store_elems += u64::from(vl.get());
        port_free_at
    }

    fn scalar_load(&mut self, now: Cycle, addr: u64) -> LoadIssue {
        match self.cache.load(addr) {
            CacheAccess::Hit => LoadIssue {
                port_free_at: now,
                data_first_at: now + 1,
                data_complete_at: now + 1,
            },
            CacheAccess::Miss => {
                let port_free_at = self.reserve(now, 1);
                self.traffic.scalar_load_words += 1;
                LoadIssue {
                    port_free_at,
                    data_first_at: now + self.params.latency,
                    data_complete_at: now + self.params.latency,
                }
            }
        }
    }

    fn scalar_store(&mut self, now: Cycle, addr: u64) -> Cycle {
        let _ = self.cache.store(addr); // hit/miss recorded in the cache stats
        let port_free_at = self.reserve(now, 1);
        self.traffic.scalar_store_words += 1;
        port_free_at
    }

    fn record_bypass(&mut self, vl: VectorLength) {
        self.traffic.bypassed_elems += u64::from(vl.get());
        self.traffic.bypassed_loads += 1;
    }
}

/// Implements every [`MemoryModel`] method that is pure delegation to
/// the backend's `core`, leaving only the vector-issue hooks (where the
/// backends actually differ) to each impl block.
macro_rules! delegate_to_core {
    () => {
        fn params(&self) -> MemoryParams {
            self.core.params
        }
        fn port_free(&self, now: Cycle) -> bool {
            self.core.port_free(now)
        }
        fn busy(&self, now: Cycle) -> bool {
            self.core.busy(now)
        }
        fn next_free_at(&self, now: Cycle) -> Option<Cycle> {
            self.core.next_free_at(now)
        }
        fn quiesce_at(&self) -> Cycle {
            self.core.quiesce_at()
        }
        fn probe_scalar(&self, addr: u64) -> CacheAccess {
            self.core.cache.probe(addr)
        }
        fn scalar_load(&mut self, now: Cycle, addr: u64) -> LoadIssue {
            self.core.scalar_load(now, addr)
        }
        fn scalar_store(&mut self, now: Cycle, addr: u64) -> Cycle {
            self.core.scalar_store(now, addr)
        }
        fn record_bypass(&mut self, vl: VectorLength) {
            self.core.record_bypass(vl)
        }
        fn traffic(&self) -> Traffic {
            self.core.traffic
        }
        fn cache(&self) -> &ScalarCache {
            &self.core.cache
        }
        fn ports(&self) -> &[AddressBus] {
            &self.core.ports
        }
    };
}

/// The paper's single-ported, conflict-free memory (Section 4.2): one
/// address bus, one uniform latency `L`.
///
/// A vector reference of length `VL` holds the bus for exactly `VL`
/// cycles; the first element of a load arrives `L` cycles after its
/// address issues and the vector is complete at `L + VL`; stores hide
/// the latency entirely.
///
/// # Examples
///
/// ```
/// use dva_memory::{FlatMemory, MemoryModel, MemoryParams};
/// use dva_isa::VectorLength;
///
/// let mut mem = FlatMemory::new(MemoryParams::with_latency(30));
/// let vl = VectorLength::new(64).unwrap();
/// let issue = mem.issue_vector_load(0, vl, None);
/// assert_eq!(issue.port_free_at, 64);      // bus held for VL cycles
/// assert_eq!(issue.data_complete_at, 94);  // L + VL
/// ```
#[derive(Debug, Clone)]
pub struct FlatMemory {
    core: MemCore,
}

impl FlatMemory {
    /// Creates a flat memory. The `model` field of `params` is restamped
    /// to [`MemoryModelKind::Flat`] so [`MemoryModel::params`] always
    /// names the backend actually running.
    pub fn new(mut params: MemoryParams) -> FlatMemory {
        params.model = MemoryModelKind::Flat;
        FlatMemory {
            core: MemCore::new(params, 1),
        }
    }
}

impl MemoryModel for FlatMemory {
    delegate_to_core!();

    fn issue_vector_load(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        _stride: Option<Stride>,
    ) -> LoadIssue {
        self.core.vector_load(now, vl, vl.cycles())
    }

    fn issue_vector_store(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        _stride: Option<Stride>,
    ) -> Cycle {
        self.core.vector_store(now, vl, vl.cycles())
    }
}

/// Interleaved main memory: `banks` banks behind one address bus, each
/// bank able to accept a new access only every `bank_busy` cycles.
///
/// Consecutive elements of a stride-`s` access map to banks `s` apart
/// (element addresses are word-interleaved), so the stream cycles over
/// `banks / gcd(s mod banks, banks)` *distinct* banks and revisits each
/// one every that-many issue slots. When the revisit interval is shorter
/// than `bank_busy` the stream throttles to the banks' aggregate service
/// rate: each element effectively holds the address bus for
///
/// ```text
/// slowdown = max(1, ceil(bank_busy / distinct_banks))
/// ```
///
/// cycles. Unit strides touch every bank and stream at full speed
/// (whenever `bank_busy <= banks`); a stride that is a multiple of the
/// bank count hammers a single bank and pays `bank_busy` cycles per
/// element — the classic worst case. Scalar accesses touch one bank once
/// and are never slowed; indexed (gather/scatter) accesses carry no
/// stride and are modeled conflict-free, like the flat model.
///
/// # Examples
///
/// ```
/// use dva_memory::{BankedMemory, MemoryModel, MemoryParams};
/// use dva_isa::{Stride, VectorLength};
///
/// let mut mem = BankedMemory::new(MemoryParams::with_latency(10), 8, 8);
/// let vl = VectorLength::new(16).unwrap();
/// // Unit stride: conflict-free, bus held for VL cycles.
/// assert_eq!(mem.issue_vector_load(0, vl, Some(Stride::UNIT)).port_free_at, 16);
/// // Stride 8 over 8 banks: every element hits the same bank.
/// let worst = mem.issue_vector_load(16, vl, Some(Stride::new(8)));
/// assert_eq!(worst.port_free_at, 16 + 16 * 8);
/// assert_eq!(worst.data_complete_at, 16 + 10 + 16 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct BankedMemory {
    core: MemCore,
    banks: u64,
    bank_busy: u64,
}

impl BankedMemory {
    /// Creates a banked memory. The `model` field of `params` is
    /// restamped to the matching [`MemoryModelKind::Banked`] so
    /// [`MemoryModel::params`] always names the backend actually
    /// running.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` and `bank_busy` are both nonzero.
    pub fn new(mut params: MemoryParams, banks: u32, bank_busy: u64) -> BankedMemory {
        assert!(
            banks > 0 && bank_busy > 0,
            "banked memory needs banks > 0 and bank_busy > 0"
        );
        params.model = MemoryModelKind::Banked { banks, bank_busy };
        BankedMemory {
            core: MemCore::new(params, 1),
            banks: u64::from(banks),
            bank_busy,
        }
    }

    /// The per-element issue slowdown a stride pays (1 = full speed).
    ///
    /// ```
    /// use dva_memory::{BankedMemory, MemoryParams};
    /// use dva_isa::Stride;
    ///
    /// let mem = BankedMemory::new(MemoryParams::default(), 8, 8);
    /// assert_eq!(mem.slowdown(Some(Stride::UNIT)), 1);    // 8 distinct banks
    /// assert_eq!(mem.slowdown(Some(Stride::new(2))), 2);  // 4 distinct banks
    /// assert_eq!(mem.slowdown(Some(Stride::new(8))), 8);  // one bank only
    /// assert_eq!(mem.slowdown(Some(Stride::new(-2))), 2); // sign is irrelevant
    /// assert_eq!(mem.slowdown(None), 1);                  // indexed: conflict-free
    /// ```
    pub fn slowdown(&self, stride: Option<Stride>) -> u64 {
        let Some(stride) = stride else {
            return 1;
        };
        let s = stride.elems().unsigned_abs() % self.banks;
        let g = if s == 0 {
            self.banks
        } else {
            gcd(s, self.banks)
        };
        let distinct = self.banks / g;
        self.bank_busy.div_ceil(distinct).max(1)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl MemoryModel for BankedMemory {
    delegate_to_core!();

    fn issue_vector_load(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        stride: Option<Stride>,
    ) -> LoadIssue {
        let hold = vl.cycles() * self.slowdown(stride);
        self.core.vector_load(now, vl, hold)
    }

    fn issue_vector_store(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        stride: Option<Stride>,
    ) -> Cycle {
        let hold = vl.cycles() * self.slowdown(stride);
        self.core.vector_store(now, vl, hold)
    }
}

/// `N` independent address buses in front of a conflict-free memory:
/// every access arbitrates for the lowest-numbered free port and then
/// times exactly like the flat model on it.
///
/// Two vector accesses can stream concurrently — the serialization the
/// paper's single port forces between back-to-back loads disappears as
/// long as a port is free.
///
/// # Examples
///
/// ```
/// use dva_memory::{MemoryModel, MemoryParams, MultiPortMemory};
/// use dva_isa::VectorLength;
///
/// let mut mem = MultiPortMemory::new(MemoryParams::with_latency(30), 2);
/// let vl = VectorLength::new(64).unwrap();
/// let first = mem.issue_vector_load(0, vl, None);
/// let second = mem.issue_vector_load(0, vl, None); // second port, same cycle
/// assert_eq!(first.data_complete_at, second.data_complete_at);
/// assert!(!mem.port_free(0)); // both ports now busy
/// assert_eq!(mem.next_free_at(0), Some(64));
/// ```
#[derive(Debug, Clone)]
pub struct MultiPortMemory {
    core: MemCore,
}

impl MultiPortMemory {
    /// Creates a multi-ported memory. The `model` field of `params` is
    /// restamped to the matching [`MemoryModelKind::MultiPort`] so
    /// [`MemoryModel::params`] always names the backend actually
    /// running.
    ///
    /// # Panics
    ///
    /// Panics unless `ports` is nonzero.
    pub fn new(mut params: MemoryParams, ports: u32) -> MultiPortMemory {
        assert!(ports > 0, "multi-port memory needs ports > 0");
        params.model = MemoryModelKind::MultiPort { ports };
        MultiPortMemory {
            core: MemCore::new(params, ports as usize),
        }
    }
}

impl MemoryModel for MultiPortMemory {
    delegate_to_core!();

    fn issue_vector_load(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        _stride: Option<Stride>,
    ) -> LoadIssue {
        self.core.vector_load(now, vl, vl.cycles())
    }

    fn issue_vector_store(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        _stride: Option<Stride>,
    ) -> Cycle {
        self.core.vector_store(now, vl, vl.cycles())
    }
}

/// The concrete backend union the engines embed directly: one enum over
/// the three [`MemoryModel`] implementations, dispatched by `match`.
///
/// The trait object returned by [`MemoryParams::build`] costs a virtual
/// call per probe — and the engines probe the memory several times per
/// tick (`port_free`, `busy`, `next_free_at` feed the issue gates, the
/// Figure 1 state sampling and the fast-forward next-event computation).
/// Holding this enum instead devirtualizes the entire hot path: every
/// accessor is a `match` over three inlineable arms, and the engine owns
/// its memory inline instead of behind a heap allocation. Build one with
/// [`MemoryParams::instantiate`].
#[derive(Debug, Clone)]
pub enum Memory {
    /// The paper's flat model.
    Flat(FlatMemory),
    /// Interleaved banks.
    Banked(BankedMemory),
    /// Independent address buses.
    MultiPort(MultiPortMemory),
}

macro_rules! dispatch {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Memory::Flat($inner) => $body,
            Memory::Banked($inner) => $body,
            Memory::MultiPort($inner) => $body,
        }
    };
}

impl MemoryModel for Memory {
    #[inline]
    fn params(&self) -> MemoryParams {
        dispatch!(self, m => m.params())
    }

    #[inline]
    fn port_free(&self, now: Cycle) -> bool {
        dispatch!(self, m => m.port_free(now))
    }

    #[inline]
    fn busy(&self, now: Cycle) -> bool {
        dispatch!(self, m => m.busy(now))
    }

    #[inline]
    fn next_free_at(&self, now: Cycle) -> Option<Cycle> {
        dispatch!(self, m => m.next_free_at(now))
    }

    #[inline]
    fn quiesce_at(&self) -> Cycle {
        dispatch!(self, m => m.quiesce_at())
    }

    #[inline]
    fn issue_vector_load(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        stride: Option<Stride>,
    ) -> LoadIssue {
        dispatch!(self, m => m.issue_vector_load(now, vl, stride))
    }

    #[inline]
    fn issue_vector_store(
        &mut self,
        now: Cycle,
        vl: VectorLength,
        stride: Option<Stride>,
    ) -> Cycle {
        dispatch!(self, m => m.issue_vector_store(now, vl, stride))
    }

    #[inline]
    fn probe_scalar(&self, addr: u64) -> CacheAccess {
        dispatch!(self, m => m.probe_scalar(addr))
    }

    #[inline]
    fn scalar_load(&mut self, now: Cycle, addr: u64) -> LoadIssue {
        dispatch!(self, m => m.scalar_load(now, addr))
    }

    #[inline]
    fn scalar_store(&mut self, now: Cycle, addr: u64) -> Cycle {
        dispatch!(self, m => m.scalar_store(now, addr))
    }

    #[inline]
    fn record_bypass(&mut self, vl: VectorLength) {
        dispatch!(self, m => m.record_bypass(vl))
    }

    #[inline]
    fn traffic(&self) -> Traffic {
        dispatch!(self, m => m.traffic())
    }

    #[inline]
    fn cache(&self) -> &ScalarCache {
        dispatch!(self, m => m.cache())
    }

    #[inline]
    fn ports(&self) -> &[AddressBus] {
        dispatch!(self, m => m.ports())
    }
}

impl MemoryParams {
    /// Instantiates the configured backend as a concrete [`Memory`] —
    /// the statically-dispatched counterpart of [`MemoryParams::build`],
    /// used by the engines' hot loops.
    ///
    /// ```
    /// use dva_memory::{Memory, MemoryModel, MemoryModelKind, MemoryParams};
    /// let mem = MemoryParams::with_latency(30)
    ///     .with_model(MemoryModelKind::MultiPort { ports: 2 })
    ///     .instantiate();
    /// assert!(matches!(mem, Memory::MultiPort(_)));
    /// assert_eq!(mem.ports().len(), 2);
    /// ```
    pub fn instantiate(&self) -> Memory {
        match self.model {
            MemoryModelKind::Flat => Memory::Flat(FlatMemory::new(*self)),
            MemoryModelKind::Banked { banks, bank_busy } => {
                Memory::Banked(BankedMemory::new(*self, banks, bank_busy))
            }
            MemoryModelKind::MultiPort { ports } => {
                Memory::MultiPort(MultiPortMemory::new(*self, ports))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dva_testutil::vl;

    fn flat(latency: u64) -> FlatMemory {
        FlatMemory::new(MemoryParams::with_latency(latency))
    }

    #[test]
    fn vector_load_timing_follows_the_paper() {
        let mut mem = flat(50);
        let issue = mem.issue_vector_load(100, vl(32), None);
        assert_eq!(issue.port_free_at, 132);
        assert_eq!(issue.data_first_at, 150);
        assert_eq!(issue.data_complete_at, 182);
        assert_eq!(mem.traffic().vector_load_elems, 32);
    }

    #[test]
    fn stores_hold_bus_but_hide_latency() {
        let mut mem = flat(100);
        let free = mem.issue_vector_store(0, vl(16), None);
        assert_eq!(free, 16);
        assert_eq!(mem.traffic().vector_store_elems, 16);
    }

    #[test]
    fn scalar_hit_avoids_bus_and_traffic() {
        let mut mem = flat(40);
        let miss = mem.scalar_load(0, 0x80);
        assert_eq!(miss.data_complete_at, 40);
        assert_eq!(mem.traffic().scalar_load_words, 1);
        // Second access to the same line hits: 1-cycle, no traffic.
        let hit = mem.scalar_load(50, 0x88);
        assert_eq!(hit.data_complete_at, 51);
        assert_eq!(hit.port_free_at, 50);
        assert_eq!(mem.traffic().scalar_load_words, 1);
    }

    #[test]
    fn probe_matches_subsequent_load() {
        let mut mem = flat(1);
        assert_eq!(mem.probe_scalar(0x100), CacheAccess::Miss);
        mem.scalar_load(0, 0x100);
        assert_eq!(mem.probe_scalar(0x100), CacheAccess::Hit);
    }

    #[test]
    fn bypass_counts_requests_without_traffic() {
        let mut mem = flat(1);
        mem.record_bypass(vl(128));
        assert_eq!(mem.traffic().memory_elems(), 0);
        assert_eq!(mem.traffic().bypassed_elems, 128);
        assert_eq!(mem.traffic().bypassed_loads, 1);
    }

    #[test]
    fn scalar_store_outcome_reaches_the_cache_stats() {
        let mut mem = flat(1);
        mem.scalar_store(0, 0x200);
        mem.scalar_store(1, 0x208); // same line: a store hit
        let stats = mem.cache().stats();
        assert_eq!(stats.store_misses, 1);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(mem.traffic().scalar_store_words, 2); // write-through regardless
    }

    #[test]
    fn banked_unit_stride_is_never_slowed() {
        // bank_busy == banks: the revisit interval exactly covers the
        // busy time, so a unit stride streams at one element per cycle.
        let mut mem = BankedMemory::new(MemoryParams::with_latency(10), 8, 8);
        let issue = mem.issue_vector_load(0, vl(64), Some(Stride::UNIT));
        assert_eq!(issue.port_free_at, 64);
        assert_eq!(issue.data_complete_at, 10 + 64);
    }

    #[test]
    fn banked_stride_multiple_of_banks_is_worst_case() {
        let mut mem = BankedMemory::new(MemoryParams::with_latency(10), 8, 8);
        for stride in [8i64, 16, -8, 0] {
            assert_eq!(
                mem.slowdown(Some(Stride::new(stride))),
                8,
                "stride {stride}"
            );
        }
        let issue = mem.issue_vector_load(0, vl(16), Some(Stride::new(16)));
        assert_eq!(issue.port_free_at, 16 * 8);
    }

    #[test]
    fn banked_intermediate_strides_interpolate() {
        let mem = BankedMemory::new(MemoryParams::default(), 8, 8);
        assert_eq!(mem.slowdown(Some(Stride::new(2))), 2); // 4 banks in play
        assert_eq!(mem.slowdown(Some(Stride::new(4))), 4); // 2 banks in play
        assert_eq!(mem.slowdown(Some(Stride::new(3))), 1); // odd: all 8 banks
        assert_eq!(mem.slowdown(Some(Stride::new(6))), 2); // gcd(6,8)=2
    }

    #[test]
    fn banked_slow_banks_throttle_even_unit_stride() {
        // 4 banks each busy 8 cycles sustain half an element per cycle.
        let mem = BankedMemory::new(MemoryParams::default(), 4, 8);
        assert_eq!(mem.slowdown(Some(Stride::UNIT)), 2);
    }

    #[test]
    fn banked_store_pays_the_same_conflicts() {
        let mut mem = BankedMemory::new(MemoryParams::with_latency(100), 8, 8);
        let free = mem.issue_vector_store(0, vl(8), Some(Stride::new(8)));
        assert_eq!(free, 64); // 8 elements x 8-cycle slowdown, latency hidden
    }

    #[test]
    fn multi_port_arbitrates_to_the_first_free_port() {
        let mut mem = MultiPortMemory::new(MemoryParams::with_latency(30), 2);
        let a = mem.issue_vector_load(0, vl(64), None);
        assert!(mem.port_free(0), "second port still free");
        let b = mem.issue_vector_load(0, vl(32), None);
        assert_eq!(a.port_free_at, 64);
        assert_eq!(b.port_free_at, 32);
        assert!(!mem.port_free(0));
        assert_eq!(mem.next_free_at(0), Some(32)); // earliest port
        assert_eq!(mem.next_free_at(32), Some(64)); // then the other one
        assert_eq!(mem.next_free_at(64), None); // quiet
        assert_eq!(mem.quiesce_at(), 64); // last port
        assert!(mem.port_free(32));
        assert!(mem.busy(32)); // port 0 still streaming
    }

    #[test]
    fn multi_port_utilization_is_reported_per_port() {
        let mut mem = MultiPortMemory::new(MemoryParams::with_latency(1), 2);
        mem.issue_vector_load(0, vl(64), None);
        mem.issue_vector_load(0, vl(32), None);
        let per_port = mem.port_utilizations(64);
        assert_eq!(per_port.len(), 2);
        assert!((per_port[0] - 1.0).abs() < 1e-12);
        assert!((per_port[1] - 0.5).abs() < 1e-12);
        assert!((mem.utilization(64) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "address port(s) busy")]
    fn issuing_with_every_port_busy_panics() {
        let mut mem = MultiPortMemory::new(MemoryParams::default(), 2);
        mem.issue_vector_load(0, vl(64), None);
        mem.issue_vector_load(0, vl(64), None);
        mem.issue_vector_load(1, vl(4), None);
    }

    #[test]
    fn constructors_stamp_their_own_kind_into_params() {
        // `params().model` must name the backend actually running, even
        // when the constructor was handed mismatched params.
        let params = MemoryParams::with_latency(5); // model: Flat
        let banked = BankedMemory::new(params, 4, 2);
        assert_eq!(
            banked.params().model,
            MemoryModelKind::Banked {
                banks: 4,
                bank_busy: 2
            }
        );
        let multi = MultiPortMemory::new(params, 3);
        assert_eq!(
            multi.params().model,
            MemoryModelKind::MultiPort { ports: 3 }
        );
        let flat = FlatMemory::new(params.with_model(MemoryModelKind::MultiPort { ports: 9 }));
        assert_eq!(flat.params().model, MemoryModelKind::Flat);
    }

    #[test]
    #[should_panic(expected = "banks > 0")]
    fn zero_banks_are_rejected() {
        let _ = BankedMemory::new(MemoryParams::default(), 0, 8);
    }

    #[test]
    #[should_panic(expected = "ports > 0")]
    fn zero_ports_are_rejected() {
        let params =
            MemoryParams::with_latency(1).with_model(MemoryModelKind::MultiPort { ports: 0 });
        let _ = params.build();
    }
}
