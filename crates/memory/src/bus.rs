//! The shared address bus.

use dva_isa::Cycle;

/// The single shared address bus of the modeled memory system.
///
/// A vector memory reference of length `VL` occupies the bus for exactly
/// `VL` cycles (paper, Section 4.2); a scalar reference occupies it for one
/// cycle. Because the data paths for loads and stores are physically
/// separate, the bus is the only point of contention.
///
/// # Examples
///
/// ```
/// use dva_memory::AddressBus;
/// let mut bus = AddressBus::new();
/// assert!(bus.is_free(0));
/// bus.reserve(0, 64);
/// assert!(!bus.is_free(63));
/// assert!(bus.is_free(64));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressBus {
    busy_until: Cycle,
    busy_cycles: u64,
}

impl AddressBus {
    /// Creates an idle bus.
    pub fn new() -> AddressBus {
        AddressBus::default()
    }

    /// Whether the bus is free at cycle `now`.
    #[inline]
    pub fn is_free(&self, now: Cycle) -> bool {
        now >= self.busy_until
    }

    /// The first cycle at which the bus becomes free.
    #[inline]
    pub fn free_at(&self) -> Cycle {
        self.busy_until
    }

    /// Occupies the bus for `cycles` cycles starting at `now`.
    ///
    /// Returns the cycle at which the bus becomes free again.
    ///
    /// # Panics
    ///
    /// Panics if the bus is already busy at `now` — callers must check
    /// [`AddressBus::is_free`] first (the simulators issue strictly
    /// in-order).
    pub fn reserve(&mut self, now: Cycle, cycles: u64) -> Cycle {
        assert!(
            self.is_free(now),
            "address bus busy until {} at cycle {now}",
            self.busy_until
        );
        self.busy_until = now + cycles;
        self.busy_cycles += cycles;
        self.busy_until
    }

    /// Total cycles the bus has been held. Used for utilization reports.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Bus utilization over `total` elapsed cycles (0..=1).
    pub fn utilization(&self, total: Cycle) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_holds_bus_for_exact_duration() {
        let mut bus = AddressBus::new();
        let free = bus.reserve(10, 5);
        assert_eq!(free, 15);
        assert!(!bus.is_free(14));
        assert!(bus.is_free(15));
        assert_eq!(bus.busy_cycles(), 5);
    }

    #[test]
    fn back_to_back_reservations_accumulate_utilization() {
        let mut bus = AddressBus::new();
        bus.reserve(0, 10);
        bus.reserve(10, 10);
        assert_eq!(bus.busy_cycles(), 20);
        assert!((bus.utilization(40) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "address bus busy")]
    fn double_reservation_panics() {
        let mut bus = AddressBus::new();
        bus.reserve(0, 10);
        bus.reserve(5, 1);
    }

    #[test]
    fn utilization_of_zero_window_is_zero() {
        let bus = AddressBus::new();
        assert_eq!(bus.utilization(0), 0.0);
    }
}
