//! The shared engine kernel: one clock, every machine.
//!
//! The paper's methodology runs the *same* programs through several
//! machine models (REF, DVA, BYP, IDEAL) under identical clocking rules.
//! This crate is where those rules live — exactly once. A machine model
//! implements [`Processor`] (how its units advance in one tick, when its
//! next timed event is due, whether it has finished); the generic
//! [`Driver`] owns everything that used to be copy-pasted between the
//! simulators:
//!
//! * the clock and the main tick loop;
//! * naive per-cycle stepping vs the *fast-forward* next-event skip,
//!   including bulk accounting of skipped cycles into the shared
//!   [`dva_metrics::StateTracker`]/[`dva_metrics::Histogram`]
//!   observers — byte-identical results either way;
//! * the deadlock watchdog;
//! * the post-completion drain that runs the clock until every unit has
//!   quiesced;
//! * the `ticks_executed` diagnostic.
//!
//! Measurements every machine shares (cycles, the Figure 1 state
//! breakdown, traffic, stall cycles) are assembled into one
//! [`ResultCore`], which the machine-specific result types wrap.
//!
//! # The progress / next-event contract
//!
//! Fast-forward is sound if and only if the processor upholds two
//! promises:
//!
//! 1. **Progress is honest.** [`Processor::step`] returns
//!    [`Progress::Advanced`] whenever *any* machine state changed this
//!    tick. A tick that returns [`Progress::Stalled`] therefore proves
//!    that every unit is blocked on a *timed* condition — nothing can
//!    change until some future cycle.
//! 2. **Events are complete.** After a stalled tick,
//!    [`Processor::next_event_after`]`(now)` returns the earliest cycle
//!    strictly after `now` at which any gating condition can change
//!    (data arriving, a unit freeing, a register becoming ready). `None`
//!    means no timed event is outstanding — a deadlock unless the
//!    processor is done.
//!
//! Under those promises, every cycle between a stalled tick and the next
//! event is provably identical to the stalled tick — any difference
//! would itself be an event — so the driver can jump the clock straight
//! to the event and bulk-account the skipped cycles by re-recording the
//! stalled tick's sample with a higher weight. The equivalence is
//! asserted by this crate's toy-processor tests without booting a full
//! machine, and by the full-machine grid and property tests in the
//! workspace's integration suite.
//!
//! # The batched driver
//!
//! [`Driver::run_batch`] advances N independent processors — *lanes* —
//! through one scheduling loop. The contract splits each lane in two:
//!
//! * **Shared structure** (read-only): whatever the processors reference
//!   behind shared handles — typically one compiled program per batch,
//!   its issue order, hazard ranges and store sequence. The driver never
//!   touches it; sharing it is what makes a batch cheaper than N
//!   sequential runs (one instruction stream stays hot across all
//!   lanes).
//! * **Per-lane timing state**: the processor's own queues, unit
//!   busy-times and memory model, plus a per-lane [`Observers`] sink and
//!   a per-lane clock inside the driver.
//!
//! Fast-forward generalizes to the batch by scheduling on the
//! **minimum** of the lanes' wake-up times: each lane's stalled tick
//! computes its own next event and bulk-accounts its own skipped
//! cycles, and the scheduler always turns to the earliest-due lane.
//! Rather than switching lanes at tick grain, it *bursts* that lane —
//! keeps advancing it until its due time passes the next lane's due
//! time by a bounded skew window ([`BATCH_WINDOW`] cycles, tunable via
//! [`Driver::batch_window`]) — so each engine's working set stays hot
//! across consecutive ticks instead of being reloaded at every event.
//! Lanes retire independently the moment their machine is structurally
//! done and drained. Lanes never observe one another, so the schedule
//! (lockstep, bursts, or any other interleaving) cannot leak into
//! results: every lane executes exactly the tick-and-sample sequence
//! [`Driver::run`] would give it alone, and batched results are
//! byte-identical to sequential runs at every lane count — the same
//! acceptance bar, enforced by the same grid-diff and property suites.
//!
//! # Examples
//!
//! A minimal processor that busy-waits for one event at cycle 10:
//!
//! ```
//! use dva_engine::{Driver, Observers, Processor, Progress};
//! use dva_isa::Cycle;
//! use dva_metrics::UnitState;
//!
//! struct WaitFor10 {
//!     done: bool,
//! }
//!
//! impl Processor for WaitFor10 {
//!     fn step(&mut self, now: Cycle) -> Progress {
//!         if now >= 10 {
//!             self.done = true;
//!             Progress::Advanced
//!         } else {
//!             Progress::Stalled
//!         }
//!     }
//!     fn is_done(&self) -> bool {
//!         self.done
//!     }
//!     fn next_event_after(&self, _now: Cycle) -> Option<Cycle> {
//!         Some(10)
//!     }
//!     fn quiesce_at(&self) -> Cycle {
//!         11
//!     }
//!     fn sample(&self, _now: Cycle, obs: &mut Observers) {
//!         obs.record_state(UnitState::empty());
//!     }
//! }
//!
//! let mut obs = Observers::new();
//! let run = Driver::new().run(&mut WaitFor10 { done: false }, &mut obs);
//! assert_eq!(run.cycles, 11);
//! assert!(run.ticks <= 3); // fast-forward skipped the quiet cycles
//! assert_eq!(obs.states.total_cycles(), 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod result;

pub use driver::{
    Completion, Driver, Lane, Observers, Processor, Progress, SimError, BATCH_WINDOW,
    WATCHDOG_TICKS,
};
pub use result::{Report, ResultCore};

/// Version stamp of the simulation engine's *observable behaviour*.
///
/// Cached results (the sweep service's content-addressed store) are only
/// valid as long as re-simulating the same point would reproduce them
/// byte for byte. Any change that can alter simulated results — engine
/// semantics, machine models, workload generation, metric accounting —
/// must bump this constant; persisted caches stamped with an older
/// version are discarded wholesale. Pure refactors proven byte-identical
/// by the grid-diff suites keep the stamp.
pub const ENGINE_VERSION: u32 = 6;
