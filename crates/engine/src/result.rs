//! The shared result core every machine's measurements are built on.

use dva_isa::Cycle;
use dva_json::{FromJson, Json, JsonError, ToJson};
use dva_metrics::{CacheStats, Diag, StateTracker, Traffic};

/// Measurements every machine reports: the common core that
/// machine-specific result types (and the unified `SimResult` of
/// `dva-sim-api`) wrap rather than duplicate.
///
/// Equality compares every *model* quantity; execution diagnostics such
/// as [`ticks_executed`](ResultCore::ticks_executed) are carried in
/// [`Diag`] and never affect comparisons or `Debug` output, so a
/// fast-forward run is byte-identical to a naive one.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultCore {
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Architectural instructions executed.
    pub insts: u64,
    /// Per-cycle occupancy of the (FU2, FU1, LD) state tuple — the raw
    /// data of the paper's Figure 1.
    pub states: StateTracker,
    /// Memory traffic counters.
    pub traffic: Traffic,
    /// Mean address-port utilization over the whole run (0..=1); for a
    /// single-ported memory, the address-bus utilization.
    pub bus_utilization: f64,
    /// Per-port address-bus utilization over the whole run, in
    /// arbitration order — one entry for flat/banked memories, `N` for
    /// an `N`-ported memory, empty for machines without one (IDEAL).
    pub port_utilization: Vec<f64>,
    /// Scalar cache hit rate over all accesses (0..=1).
    pub cache_hit_rate: f64,
    /// Scalar cache hit/miss counts, split into loads and stores.
    pub cache: CacheStats,
    /// Front-end stall cycles: dispatch stalls on the reference machine,
    /// fetch-processor stalls on the decoupled machine.
    pub stall_cycles: u64,
    /// Engine iterations actually executed. Equal to `cycles` under
    /// naive stepping; under fast-forward it counts only the ticks that
    /// were simulated (skipped quiet cycles are bulk-accounted). A
    /// diagnostic: excluded from equality and `Debug`.
    pub ticks_executed: Diag<u64>,
}

impl ResultCore {
    /// A core for a machine without a timeline (the IDEAL bound): a
    /// cycle count and an instruction count, everything else empty.
    pub fn untimed(cycles: Cycle, insts: u64) -> ResultCore {
        ResultCore {
            cycles,
            insts,
            states: StateTracker::new(),
            traffic: Traffic::default(),
            bus_utilization: 0.0,
            port_utilization: Vec::new(),
            cache_hit_rate: 0.0,
            cache: CacheStats::default(),
            stall_cycles: 0,
            ticks_executed: Diag(0),
        }
    }

    /// Cycles spent in the all-idle `( , , )` state.
    pub fn idle_cycles(&self) -> Cycle {
        self.states.idle_cycles()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

impl ToJson for ResultCore {
    /// The stable wire/disk form of the core. Every model quantity is
    /// carried; the `ticks_executed` diagnostic rides along (it restores
    /// on round-trip but, as always with [`Diag`], never affects
    /// equality).
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("insts", Json::from(self.insts)),
            ("states", self.states.to_json()),
            ("traffic", self.traffic.to_json()),
            ("bus_utilization", Json::from(self.bus_utilization)),
            (
                "port_utilization",
                Json::Array(
                    self.port_utilization
                        .iter()
                        .map(|&p| Json::from(p))
                        .collect(),
                ),
            ),
            ("cache_hit_rate", Json::from(self.cache_hit_rate)),
            ("cache", self.cache.to_json()),
            ("stall_cycles", Json::from(self.stall_cycles)),
            ("ticks_executed", Json::from(self.ticks_executed.get())),
        ])
    }
}

impl FromJson for ResultCore {
    fn from_json(json: &Json) -> Result<ResultCore, JsonError> {
        Ok(ResultCore {
            cycles: json.field("cycles")?.as_u64()?,
            insts: json.field("insts")?.as_u64()?,
            states: StateTracker::from_json(json.field("states")?)?,
            traffic: Traffic::from_json(json.field("traffic")?)?,
            bus_utilization: json.field("bus_utilization")?.as_f64()?,
            port_utilization: json
                .field("port_utilization")?
                .as_array()?
                .iter()
                .map(Json::as_f64)
                .collect::<Result<_, _>>()?,
            cache_hit_rate: json.field("cache_hit_rate")?.as_f64()?,
            cache: CacheStats::from_json(json.field("cache")?)?,
            stall_cycles: json.field("stall_cycles")?.as_u64()?,
            ticks_executed: Diag(json.field("ticks_executed")?.as_u64()?),
        })
    }
}

/// A processor's contribution to the [`ResultCore`]: the counters only
/// the machine model itself can produce, handed to the driver's result
/// assembly once the clock has stopped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Architectural instructions executed.
    pub insts: u64,
    /// Memory traffic counters.
    pub traffic: Traffic,
    /// Mean address-port utilization over the whole run (0..=1).
    pub bus_utilization: f64,
    /// Per-port address-bus utilization, in arbitration order.
    pub port_utilization: Vec<f64>,
    /// Scalar cache hit rate over all accesses (0..=1).
    pub cache_hit_rate: f64,
    /// Scalar cache hit/miss counts, split into loads and stores.
    pub cache: CacheStats,
    /// Front-end stall cycles.
    pub stall_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untimed_core_is_empty_but_counts() {
        let core = ResultCore::untimed(120, 40);
        assert_eq!(core.cycles, 120);
        assert_eq!(core.idle_cycles(), 0);
        assert!((core.ipc() - 40.0 / 120.0).abs() < 1e-12);
        assert_eq!(core.states.total_cycles(), 0);
    }

    #[test]
    fn diagnostics_never_break_core_equality() {
        let mut fast = ResultCore::untimed(10, 5);
        let naive = ResultCore::untimed(10, 5);
        fast.ticks_executed = Diag(3);
        assert_eq!(fast, naive);
        assert_eq!(format!("{fast:?}"), format!("{naive:?}"));
    }

    #[test]
    fn zero_cycle_runs_have_zero_ipc() {
        assert_eq!(ResultCore::untimed(0, 0).ipc(), 0.0);
    }

    #[test]
    fn result_core_round_trips_through_json() {
        let mut core = ResultCore::untimed(120, 40);
        core.states.add(dva_metrics::UnitState::LD, 50);
        core.traffic.vector_load_elems = 640;
        core.bus_utilization = 0.125;
        core.port_utilization = vec![0.25, 1.0 / 3.0];
        core.cache_hit_rate = 0.75;
        core.cache.load_hits = 3;
        core.stall_cycles = 17;
        core.ticks_executed = Diag(99);
        let back = ResultCore::from_json(&core.to_json()).unwrap();
        assert_eq!(back, core);
        // Even the float fields and the diagnostic restore exactly: the
        // rendered bytes are a fixed point.
        assert_eq!(back.to_json().render(), core.to_json().render());
        assert_eq!(back.ticks_executed.get(), 99);
    }
}
