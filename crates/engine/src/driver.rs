//! The generic cycle driver and the [`Processor`] contract it drives.

use crate::result::{Report, ResultCore};
use dva_isa::Cycle;
use dva_metrics::{Diag, Histogram, StateTracker, UnitState};
use std::fmt;

/// How many consecutive ticks without progress before the driver declares
/// a deadlock (a bug in the machine model) and panics with diagnostics.
///
/// Counted in executed *ticks*, not cycles, so fast-forward jumps over
/// quiet cycles never trip it early and a genuine deadlock is detected
/// after the same amount of simulation work in either stepping mode. A
/// valid trace never waits more than a latency + vector length handful
/// of cycles, so the default is generous.
pub const WATCHDOG_TICKS: u64 = 200_000;

/// A structured simulation failure: the deadlock watchdog's diagnosis,
/// returned by [`Driver::try_run`] / [`Driver::try_run_batch`] instead
/// of a panic.
///
/// A deadlock is an internal invariant violation — a valid machine model
/// on a valid trace always completes — so the panicking entry points
/// ([`Driver::run`], [`Driver::run_batch`]) remain the right default for
/// experiment code. Long-running services use the `try_` variants so one
/// poisoned simulation becomes a typed error instead of tearing down a
/// worker thread; [`SimError`]'s [`Display`](fmt::Display) form is
/// exactly the message the panicking paths would have raised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// The cycle the clock stood at when the watchdog tripped.
    pub cycle: Cycle,
    /// Consecutive executed ticks without progress (just past the
    /// watchdog threshold).
    pub ticks_stalled: u64,
    /// The processor's own [`Processor::deadlock_context`] line.
    pub context: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine deadlock at cycle {}: no progress for {} ticks; {}",
            self.cycle, self.ticks_stalled, self.context
        )
    }
}

impl std::error::Error for SimError {}

/// What one executed tick did to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Some unit changed state: an instruction issued, a queue pushed or
    /// popped, a store committed.
    Advanced,
    /// Nothing changed. Every unit is provably blocked on a *timed*
    /// condition, so the driver may fast-forward to the next event.
    Stalled,
}

impl Progress {
    /// `true` for [`Progress::Advanced`].
    pub fn advanced(self) -> bool {
        self == Progress::Advanced
    }
}

impl From<bool> for Progress {
    /// `true` maps to [`Progress::Advanced`].
    fn from(advanced: bool) -> Progress {
        if advanced {
            Progress::Advanced
        } else {
            Progress::Stalled
        }
    }
}

/// The per-cycle statistics sink shared by every machine: the Figure 1
/// state breakdown, plus an optional occupancy histogram (the DVA's
/// AVDQ, Figure 6).
///
/// The driver sets the *weight* — how many cycles the next recorded
/// sample stands for. During normal stepping the weight is 1; when
/// fast-forward skips `n` provably-identical cycles the driver replays
/// the stalled tick's sample with weight `n`, which is what keeps
/// bulk accounting byte-identical to naive stepping.
#[derive(Debug, Clone, PartialEq)]
pub struct Observers {
    /// Per-cycle machine state occupancy (paper, Figure 1).
    pub states: StateTracker,
    /// Per-cycle queue occupancy, for machines that track one (Figure 6).
    pub occupancy: Option<Histogram>,
    weight: u64,
}

impl Observers {
    /// Observers with the state breakdown only.
    pub fn new() -> Observers {
        Observers {
            states: StateTracker::new(),
            occupancy: None,
            weight: 1,
        }
    }

    /// Observers that additionally histogram a queue occupancy.
    pub fn with_occupancy(histogram: Histogram) -> Observers {
        Observers {
            occupancy: Some(histogram),
            ..Observers::new()
        }
    }

    /// Records the machine state for the current sample weight.
    #[inline]
    pub fn record_state(&mut self, state: UnitState) {
        self.states.add(state, self.weight);
    }

    /// Records a queue occupancy for the current sample weight (no-op
    /// when the machine tracks none).
    #[inline]
    pub fn record_occupancy(&mut self, busy_slots: usize) {
        if let Some(histogram) = &mut self.occupancy {
            histogram.add(busy_slots, self.weight);
        }
    }

    fn set_weight(&mut self, weight: u64) {
        self.weight = weight;
    }
}

impl Default for Observers {
    fn default() -> Observers {
        Observers::new()
    }
}

/// A machine model, as seen by the [`Driver`].
///
/// The processor advances its units in [`step`](Processor::step) and
/// reports honestly whether anything changed; the driver owns the clock,
/// the stepping strategy, the watchdog and the statistics bookkeeping.
/// See the [crate docs](crate) for the progress / next-event contract
/// that makes fast-forward sound.
pub trait Processor {
    /// Advances every unit one tick at cycle `now`. Must return
    /// [`Progress::Advanced`] iff any machine state changed.
    fn step(&mut self, now: Cycle) -> Progress;

    /// Whether the machine has structurally finished: everything fetched,
    /// every queue drained, nothing left to do but let in-flight work
    /// quiesce. Checked by the driver before each tick; must be `true`
    /// for an empty program.
    fn is_done(&self) -> bool;

    /// The earliest cycle strictly after `now` at which *anything* in the
    /// machine can change state, or `None` when no timed event is
    /// outstanding (a deadlock unless [`is_done`](Processor::is_done)).
    /// Consulted only after a tick that made no progress.
    fn next_event_after(&self, now: Cycle) -> Option<Cycle>;

    /// The cycle at which every unit and register is quiet, given that
    /// the machine is structurally done. The driver runs the clock (and
    /// the per-cycle sampling) up to this cycle.
    fn quiesce_at(&self) -> Cycle;

    /// Samples the per-cycle observables at cycle `now` — called once
    /// after every executed tick, and again with a higher weight when
    /// fast-forward bulk-accounts skipped cycles. Must be a pure read of
    /// the machine state.
    fn sample(&self, now: Cycle, obs: &mut Observers);

    /// Samples one post-completion drain cycle (the machine is
    /// structurally done; units are flushing). Defaults to
    /// [`sample`](Processor::sample).
    fn drain_sample(&self, now: Cycle, obs: &mut Observers) {
        self.sample(now, obs);
    }

    /// Folds `skipped` fast-forwarded cycles into the processor's own
    /// stall counters. Called with the machine in the stalled tick's
    /// state (cycle `now`), immediately before the clock jumps.
    fn account_skipped(&mut self, now: Cycle, skipped: u64) {
        let _ = (now, skipped);
    }

    /// The processor's contribution to the shared [`ResultCore`], read
    /// once after the clock stops at `cycles`.
    fn report(&self, cycles: Cycle) -> Report {
        let _ = cycles;
        Report::default()
    }

    /// One line of machine state for the watchdog's deadlock panic.
    fn deadlock_context(&self, now: Cycle) -> String {
        let _ = now;
        String::new()
    }
}

/// One lane of a batched run: a machine model plus the observers its
/// samples land in. See [`Driver::run_batch`].
///
/// A lane owns the *per-configuration timing state* (the processor's
/// queues, unit busy-times, memory model) and the per-configuration
/// statistics sink; whatever structure the processors share (a compiled
/// program, hazard metadata) they share behind their own references —
/// the driver never looks at it.
#[derive(Debug)]
pub struct Lane<'a, P: ?Sized> {
    /// The machine model this lane advances.
    pub processor: &'a mut P,
    /// The statistics sink for this lane's run.
    pub observers: &'a mut Observers,
}

/// The driver's per-lane clock: where this lane's simulation time stands
/// and when it next has something to do.
struct LaneClock {
    now: Cycle,
    /// The cycle this lane's next tick executes at (`== now` until the
    /// lane fast-forwards past other lanes).
    due: Cycle,
    ticks: u64,
    ticks_since_progress: u64,
    /// Whether [`Processor::is_done`] could have flipped since it was
    /// last consulted. Completion is reached only through progress, so
    /// after a stalled tick the check is skipped outright.
    check_done: bool,
    finished: Option<Completion>,
}

impl LaneClock {
    fn new() -> LaneClock {
        LaneClock {
            now: 0,
            due: 0,
            ticks: 0,
            ticks_since_progress: 0,
            check_done: true,
            finished: None,
        }
    }
}

/// What the [`Driver`] measured itself: where the clock stopped and how
/// many ticks it actually executed to get there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Total execution time in cycles.
    pub cycles: Cycle,
    /// Engine iterations actually executed (`== cycles` under naive
    /// stepping, less under fast-forward).
    pub ticks: u64,
}

impl Completion {
    /// Assembles the shared [`ResultCore`] from the driver's clock, the
    /// observers' statistics and the processor's [`Report`], returning
    /// the occupancy histogram (if the machine tracked one) alongside.
    pub fn into_core<P: Processor + ?Sized>(
        self,
        processor: &P,
        observers: Observers,
    ) -> (ResultCore, Option<Histogram>) {
        let report = processor.report(self.cycles);
        let core = ResultCore {
            cycles: self.cycles,
            insts: report.insts,
            states: observers.states,
            traffic: report.traffic,
            bus_utilization: report.bus_utilization,
            port_utilization: report.port_utilization,
            cache_hit_rate: report.cache_hit_rate,
            cache: report.cache,
            stall_cycles: report.stall_cycles,
            ticks_executed: Diag(self.ticks),
        };
        (core, observers.occupancy)
    }
}

/// The generic cycle driver: the one place in the workspace where the
/// simulation clock lives.
///
/// ```
/// use dva_engine::Driver;
///
/// let driver = Driver::new(); // fast-forward on, default watchdog
/// let naive = Driver::new().fast_forward(false);
/// # let _ = (driver, naive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Driver {
    fast_forward: bool,
    watchdog_ticks: u64,
    batch_window: Cycle,
}

/// Default bounded-skew window of the batched scheduler, in cycles: how
/// far past the other lanes' earliest due cycle one lane may burst
/// before the driver switches lanes. Results are independent of the
/// window (lanes never interact); it only trades lane skew against
/// cache locality and scheduling overhead.
pub const BATCH_WINDOW: Cycle = 4096;

impl Driver {
    /// A driver with fast-forward enabled and the default
    /// [`WATCHDOG_TICKS`] deadlock threshold.
    pub fn new() -> Driver {
        Driver {
            fast_forward: true,
            watchdog_ticks: WATCHDOG_TICKS,
            batch_window: BATCH_WINDOW,
        }
    }

    /// Enables or disables the next-event fast-forward (on by default;
    /// turning it off forces naive per-cycle stepping — byte-identical
    /// results, kept around to verify exactly that).
    #[must_use]
    pub fn fast_forward(mut self, fast_forward: bool) -> Driver {
        self.fast_forward = fast_forward;
        self
    }

    /// Overrides the watchdog threshold (consecutive no-progress ticks
    /// before the driver panics).
    #[must_use]
    pub fn watchdog_ticks(mut self, ticks: u64) -> Driver {
        self.watchdog_ticks = ticks;
        self
    }

    /// Overrides the batched scheduler's bounded-skew window (see
    /// [`BATCH_WINDOW`]). `0` forces strict lockstep — a lane switch at
    /// every distinct due cycle.
    #[must_use]
    pub fn batch_window(mut self, cycles: Cycle) -> Driver {
        self.batch_window = cycles;
        self
    }

    /// Runs `processor` to completion, sampling into `observers`, and
    /// reports where the clock stopped.
    ///
    /// # Panics
    ///
    /// Panics if the processor makes no progress for more than the
    /// watchdog threshold of consecutive ticks — a deadlock, which for a
    /// valid machine model and trace is an internal invariant violation.
    /// Callers that must survive a poisoned simulation use
    /// [`try_run`](Driver::try_run) instead.
    pub fn run<P: Processor + ?Sized>(
        &self,
        processor: &mut P,
        observers: &mut Observers,
    ) -> Completion {
        self.try_run(processor, observers)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run`](Driver::run), but a tripped deadlock watchdog comes back
    /// as a [`SimError`] instead of a panic. The processor and observers
    /// are left mid-flight on error and must be discarded.
    pub fn try_run<P: Processor + ?Sized>(
        &self,
        processor: &mut P,
        observers: &mut Observers,
    ) -> Result<Completion, SimError> {
        let mut clock = LaneClock::new();
        loop {
            if let Some(completion) = clock.finished {
                return Ok(completion);
            }
            self.advance(processor, observers, &mut clock)?;
        }
    }

    /// Runs a batch of lanes to completion in lockstep and reports each
    /// lane's completion, in lane order.
    ///
    /// Every lane advances through *exactly* the tick-and-sample sequence
    /// [`run`](Driver::run) would execute for it alone — the batch only
    /// chooses the interleaving — so each lane's results are byte-
    /// identical to a sequential run (the same argument that makes
    /// fast-forward byte-identical to naive stepping; only the
    /// `ticks_executed` diagnostic is path-dependent, and it is not).
    ///
    /// The scheduling rule is the batched generalization of fast-forward:
    /// each lane carries its own clock and a *due* cycle (the target its
    /// last tick fast-forwarded to); the driver repeatedly selects the
    /// lane with the **minimum** due cycle and advances it, bulk-
    /// accounting each lane's skipped cycles per lane. To keep one
    /// lane's machine state hot in cache, the selected lane *bursts*: it
    /// keeps advancing until its due cycle passes the other live lanes'
    /// earliest due by more than the bounded-skew window
    /// ([`batch_window`](Driver::batch_window)) — lanes never interact,
    /// so the skew is unobservable in the results. A lane whose
    /// processor reports done drains and retires immediately — a
    /// structurally finished machine no longer interacts with anything —
    /// and the batch continues with the survivors.
    ///
    /// # Panics
    ///
    /// Panics if any lane trips the deadlock watchdog, like
    /// [`run`](Driver::run). Callers that must survive a poisoned lane
    /// use [`try_run_batch`](Driver::try_run_batch) instead.
    pub fn run_batch<P: Processor + ?Sized>(&self, lanes: &mut [Lane<'_, P>]) -> Vec<Completion> {
        self.try_run_batch(lanes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_batch`](Driver::run_batch), but a tripped deadlock watchdog
    /// on *any* lane comes back as a [`SimError`] instead of a panic.
    /// On error the whole batch is abandoned mid-flight — lanes and
    /// observers must be discarded; the caller re-runs survivors
    /// individually if it wants to salvage them.
    pub fn try_run_batch<P: Processor + ?Sized>(
        &self,
        lanes: &mut [Lane<'_, P>],
    ) -> Result<Vec<Completion>, SimError> {
        let mut clocks: Vec<LaneClock> = lanes.iter().map(|_| LaneClock::new()).collect();
        // Indices of the lanes still running; retirement swap-removes.
        let mut live: Vec<usize> = (0..lanes.len()).collect();
        while let Some(slot) = live
            .iter()
            .enumerate()
            .min_by_key(|(_, &lane)| clocks[lane].due)
            .map(|(slot, _)| slot)
        {
            let lane = live[slot];
            // The burst horizon: the earliest the *other* live lanes have
            // anything to do, plus the bounded-skew window.
            let horizon = live
                .iter()
                .filter(|&&other| other != lane)
                .map(|&other| clocks[other].due)
                .min()
                .unwrap_or(Cycle::MAX)
                .saturating_add(self.batch_window);
            let clock = &mut clocks[lane];
            let Lane {
                processor,
                observers,
            } = &mut lanes[lane];
            loop {
                self.advance(*processor, observers, clock)?;
                if clock.finished.is_some() {
                    live.swap_remove(slot);
                    break;
                }
                if clock.due > horizon {
                    break;
                }
            }
        }
        Ok(clocks
            .into_iter()
            .map(|clock| clock.finished.expect("every lane retired"))
            .collect())
    }

    /// One driver iteration for a lane standing at `clock.now`: the
    /// completion drain when the processor is structurally done, else one
    /// executed tick with watchdog, fast-forward and bulk accounting.
    /// [`run`](Driver::run) and [`run_batch`](Driver::run_batch) both
    /// funnel through here, so the sequential and batched paths cannot
    /// drift apart.
    #[inline]
    fn advance<P: Processor + ?Sized>(
        &self,
        processor: &mut P,
        observers: &mut Observers,
        clock: &mut LaneClock,
    ) -> Result<(), SimError> {
        if clock.check_done && processor.is_done() {
            // Drain: run the clock until every unit and register is
            // quiet. The machine no longer interacts with anything, so a
            // batched lane drains in one tight loop and retires.
            let end = processor.quiesce_at();
            let mut now = clock.now;
            while now < end {
                clock.ticks += 1;
                observers.set_weight(1);
                processor.drain_sample(now, observers);
                now += 1;
            }
            clock.finished = Some(Completion {
                cycles: now,
                ticks: clock.ticks,
            });
            return Ok(());
        }
        let now = clock.now;
        let progress = processor.step(now).advanced();
        clock.ticks += 1;
        clock.check_done = progress;
        if progress {
            clock.ticks_since_progress = 0;
        } else {
            clock.ticks_since_progress += 1;
        }
        if clock.ticks_since_progress > self.watchdog_ticks {
            return Err(SimError {
                cycle: now,
                ticks_stalled: clock.ticks_since_progress,
                context: processor.deadlock_context(now),
            });
        }
        // A tick without progress proves every unit is blocked on a
        // timed condition, so fast-forward jumps straight to the next
        // event, bulk-accounting the skipped cycles. The per-cycle
        // samples and stall counters of the skipped cycles are
        // identical to this tick's — any change in between would
        // itself be an event — so the tick is sampled once, weighted
        // by itself plus everything it skips, which is what keeps
        // the results byte-identical to naive stepping.
        let mut jump_to = None;
        if !progress && self.fast_forward {
            if let Some(target) = processor.next_event_after(now) {
                assert!(
                    target > now,
                    "Processor contract violation: next_event_after({now}) returned \
                     {target}, which is not strictly ahead of the stalled tick"
                );
                jump_to = Some(target);
            }
        }
        let skipped = jump_to.map_or(0, |target| target - (now + 1));
        observers.set_weight(1 + skipped);
        processor.sample(now, observers);
        if skipped > 0 {
            processor.account_skipped(now, skipped);
        }
        clock.now = jump_to.unwrap_or(now + 1);
        clock.due = clock.now;
        Ok(())
    }
}

impl Default for Driver {
    fn default() -> Driver {
        Driver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic machine: a fixed schedule of "work items", each
    /// becoming ready at a given cycle. A tick completes at most one due
    /// item; with nothing due the machine is provably stalled until the
    /// next scheduled cycle. `busy_until` keeps a pretend unit busy past
    /// the last completion, exercising the post-completion drain.
    struct Toy {
        schedule: Vec<Cycle>,
        next: usize,
        stalls: u64,
        skipped_stalls: u64,
        busy_until: Cycle,
    }

    impl Toy {
        fn new(schedule: Vec<Cycle>, busy_until: Cycle) -> Toy {
            Toy {
                schedule,
                next: 0,
                stalls: 0,
                skipped_stalls: 0,
                busy_until,
            }
        }
    }

    impl Processor for Toy {
        fn step(&mut self, now: Cycle) -> Progress {
            match self.schedule.get(self.next) {
                Some(&due) if due <= now => {
                    self.next += 1;
                    Progress::Advanced
                }
                _ => {
                    self.stalls += 1;
                    Progress::Stalled
                }
            }
        }

        fn is_done(&self) -> bool {
            self.next >= self.schedule.len()
        }

        fn next_event_after(&self, now: Cycle) -> Option<Cycle> {
            self.schedule
                .get(self.next)
                .copied()
                .filter(|&due| due > now)
        }

        fn quiesce_at(&self) -> Cycle {
            self.busy_until
        }

        fn sample(&self, _now: Cycle, obs: &mut Observers) {
            obs.record_state(UnitState::empty());
            obs.record_occupancy(self.schedule.len() - self.next);
        }

        fn drain_sample(&self, _now: Cycle, obs: &mut Observers) {
            obs.record_state(UnitState::FU1);
            obs.record_occupancy(0);
        }

        fn account_skipped(&mut self, _now: Cycle, skipped: u64) {
            self.skipped_stalls += skipped;
        }

        fn report(&self, _cycles: Cycle) -> Report {
            Report {
                stall_cycles: self.stalls + self.skipped_stalls,
                ..Report::default()
            }
        }

        fn deadlock_context(&self, _now: Cycle) -> String {
            format!("toy item {}/{}", self.next, self.schedule.len())
        }
    }

    fn run_toy(
        fast_forward: bool,
        schedule: Vec<Cycle>,
        busy_until: Cycle,
    ) -> (Toy, Observers, Completion) {
        let mut toy = Toy::new(schedule, busy_until);
        let mut obs = Observers::with_occupancy(Histogram::new(8));
        let completion = Driver::new()
            .fast_forward(fast_forward)
            .run(&mut toy, &mut obs);
        (toy, obs, completion)
    }

    /// The acceptance test the tentpole names: fast-forward bulk
    /// accounting equals naive stepping cycle-for-cycle — clock, state
    /// breakdown, occupancy histogram and stall counters — without
    /// booting a full machine.
    #[test]
    fn fast_forward_bulk_accounting_equals_naive_stepping() {
        let schedule = vec![0, 3, 3, 40, 41, 100];
        let (fast_toy, fast_obs, fast) = run_toy(true, schedule.clone(), 107);
        let (naive_toy, naive_obs, naive) = run_toy(false, schedule, 107);
        assert_eq!(fast.cycles, naive.cycles);
        assert_eq!(fast_obs, naive_obs);
        assert_eq!(
            fast_toy.stalls + fast_toy.skipped_stalls,
            naive_toy.stalls,
            "bulk-accounted stalls must equal per-cycle stalls"
        );
        assert_eq!(naive.ticks, naive.cycles);
        assert!(
            fast.ticks < naive.ticks,
            "fast-forward must skip the quiet cycles ({} vs {})",
            fast.ticks,
            naive.ticks
        );
        // Every cycle is accounted exactly once, in both modes.
        assert_eq!(fast_obs.states.total_cycles(), fast.cycles);
        assert_eq!(fast_obs.occupancy.unwrap().total(), fast.cycles);
    }

    #[test]
    fn drain_runs_the_clock_to_quiescence() {
        let (_, obs, completion) = run_toy(true, vec![0], 25);
        assert_eq!(completion.cycles, 25);
        // One live tick at cycle 0, then 24 drain samples.
        assert_eq!(obs.states.cycles_in(UnitState::FU1), 24);
        assert_eq!(obs.states.total_cycles(), 25);
    }

    #[test]
    fn a_done_processor_never_ticks() {
        let (_, obs, completion) = run_toy(true, Vec::new(), 0);
        assert_eq!(completion.cycles, 0);
        assert_eq!(completion.ticks, 0);
        assert_eq!(obs.states.total_cycles(), 0);
    }

    /// The watchdog trips on a processor that claims progress is
    /// impossible forever (no next event, never done).
    #[test]
    #[should_panic(expected = "engine deadlock")]
    fn watchdog_trips_on_a_processor_that_never_progresses() {
        struct Stuck;
        impl Processor for Stuck {
            fn step(&mut self, _now: Cycle) -> Progress {
                Progress::Stalled
            }
            fn is_done(&self) -> bool {
                false
            }
            fn next_event_after(&self, _now: Cycle) -> Option<Cycle> {
                None
            }
            fn quiesce_at(&self) -> Cycle {
                0
            }
            fn sample(&self, _now: Cycle, obs: &mut Observers) {
                obs.record_state(UnitState::empty());
            }
        }
        let _ = Driver::new()
            .watchdog_ticks(64)
            .run(&mut Stuck, &mut Observers::new());
    }

    /// `try_run` reports the same deadlock as a typed [`SimError`] whose
    /// display form is exactly the panic message, so the two entry
    /// points cannot drift apart.
    #[test]
    fn try_run_returns_a_structured_deadlock() {
        struct Stuck;
        impl Processor for Stuck {
            fn step(&mut self, _now: Cycle) -> Progress {
                Progress::Stalled
            }
            fn is_done(&self) -> bool {
                false
            }
            fn next_event_after(&self, _now: Cycle) -> Option<Cycle> {
                None
            }
            fn quiesce_at(&self) -> Cycle {
                0
            }
            fn sample(&self, _now: Cycle, obs: &mut Observers) {
                obs.record_state(UnitState::empty());
            }
            fn deadlock_context(&self, _now: Cycle) -> String {
                "stuck unit".into()
            }
        }
        let err = Driver::new()
            .watchdog_ticks(64)
            .try_run(&mut Stuck, &mut Observers::new())
            .unwrap_err();
        assert_eq!(err.ticks_stalled, 65);
        assert_eq!(err.context, "stuck unit");
        assert_eq!(
            err.to_string(),
            format!(
                "engine deadlock at cycle {}: no progress for 65 ticks; stuck unit",
                err.cycle
            )
        );
    }

    /// The watchdog counts executed ticks, not cycles: a fast-forward
    /// jump over a long quiet stretch must not trip it.
    #[test]
    fn watchdog_counts_ticks_not_skipped_cycles() {
        let (_, _, completion) = run_toy(true, vec![0, 1_000_000], 1_000_001);
        assert_eq!(completion.cycles, 1_000_001);
        assert!(completion.ticks < 10);
    }

    /// The batched acceptance bar: running lanes in lockstep produces,
    /// per lane, exactly the completion and observer bytes a sequential
    /// run produces — at every lane count and mix of schedules.
    #[test]
    fn batched_lanes_equal_sequential_runs() {
        let schedules: [(Vec<Cycle>, Cycle); 4] = [
            (vec![0, 3, 3, 40, 41, 100], 107),
            (vec![0, 1, 2, 3], 4),
            (vec![5, 500, 501], 600),
            (Vec::new(), 0), // an empty lane retires without ticking
        ];
        let sequential: Vec<(Toy, Observers, Completion)> = schedules
            .iter()
            .map(|(schedule, busy)| run_toy(true, schedule.clone(), *busy))
            .collect();
        for lane_count in 1..=schedules.len() {
            let mut toys: Vec<Toy> = schedules[..lane_count]
                .iter()
                .map(|(schedule, busy)| Toy::new(schedule.clone(), *busy))
                .collect();
            let mut observers: Vec<Observers> = (0..lane_count)
                .map(|_| Observers::with_occupancy(Histogram::new(8)))
                .collect();
            let mut lanes: Vec<Lane<'_, Toy>> = toys
                .iter_mut()
                .zip(observers.iter_mut())
                .map(|(processor, observers)| Lane {
                    processor,
                    observers,
                })
                .collect();
            let completions = Driver::new().run_batch(&mut lanes);
            assert_eq!(completions.len(), lane_count);
            for (i, completion) in completions.iter().enumerate() {
                let (seq_toy, seq_obs, seq_completion) = &sequential[i];
                assert_eq!(completion, seq_completion, "lane {i} of {lane_count}");
                assert_eq!(&observers[i], seq_obs, "lane {i} observers");
                assert_eq!(toys[i].stalls, seq_toy.stalls);
                assert_eq!(toys[i].skipped_stalls, seq_toy.skipped_stalls);
            }
        }
    }

    /// Naive stepping batches too: with fast-forward off every live lane
    /// is due every cycle, and the results still match lane-for-lane.
    #[test]
    fn batched_naive_stepping_equals_sequential_naive_stepping() {
        let schedules: [(Vec<Cycle>, Cycle); 2] = [(vec![0, 3, 17], 20), (vec![2, 2, 40], 45)];
        let mut toys: Vec<Toy> = schedules
            .iter()
            .map(|(schedule, busy)| Toy::new(schedule.clone(), *busy))
            .collect();
        let mut observers: Vec<Observers> = (0..toys.len())
            .map(|_| Observers::with_occupancy(Histogram::new(8)))
            .collect();
        let mut lanes: Vec<Lane<'_, Toy>> = toys
            .iter_mut()
            .zip(observers.iter_mut())
            .map(|(processor, observers)| Lane {
                processor,
                observers,
            })
            .collect();
        let completions = Driver::new().fast_forward(false).run_batch(&mut lanes);
        for (i, (schedule, busy)) in schedules.iter().enumerate() {
            let (_, seq_obs, seq_completion) = run_toy(false, schedule.clone(), *busy);
            assert_eq!(completions[i], seq_completion);
            assert_eq!(observers[i], seq_obs);
            assert_eq!(completions[i].ticks, completions[i].cycles, "naive ticks");
        }
    }

    #[test]
    fn an_empty_batch_completes_immediately() {
        let mut lanes: Vec<Lane<'_, Toy>> = Vec::new();
        assert_eq!(Driver::new().run_batch(&mut lanes), Vec::new());
    }

    #[test]
    fn completion_assembles_the_shared_result_core() {
        let (toy, obs, completion) = run_toy(true, vec![0, 7], 8);
        let (core, occupancy) = completion.into_core(&toy, obs);
        assert_eq!(core.cycles, 8);
        assert_eq!(core.states.total_cycles(), 8);
        assert_eq!(core.ticks_executed.get(), completion.ticks);
        assert!(core.stall_cycles > 0);
        assert!(occupancy.is_some());
    }
}
