//! Quickstart: simulate one Perfect Club model on every machine.
//!
//! ```text
//! cargo run --release -p dva-examples --bin quickstart
//! ```

use dva_sim_api::Machine;
use dva_workloads::{Benchmark, Scale};

fn main() {
    // 1. Build a workload trace (the stand-in for the paper's Dixie
    //    traces of Convex-compiled Perfect Club programs).
    let program = Benchmark::Trfd.program(Scale::Default);
    let summary = program.summary();
    println!("workload: {summary}");

    // 2. Pick a memory latency; every machine is just a value now.
    let latency = 50;
    let reference = Machine::reference(latency).simulate(&program);
    let dva = Machine::dva(latency).simulate(&program);
    let ideal = Machine::ideal().simulate(&program);

    // 3. Compare the machines against each other and against the IDEAL
    //    resource bound.
    let bound = ideal.ideal_bound().expect("IDEAL carries its bound");
    println!("memory latency: {latency} cycles");
    println!(
        "IDEAL bound: {} cycles (bottleneck: {})",
        ideal.cycles,
        bound.bottleneck()
    );
    dva_examples::print_comparison("TRFD", &reference, &dva);
    println!(
        "stall state ( , , ): REF {} cycles vs DVA {} cycles ({:.1}x reduction)",
        reference.idle_cycles(),
        dva.idle_cycles(),
        reference.idle_cycles() as f64 / dva.idle_cycles().max(1) as f64
    );
}
