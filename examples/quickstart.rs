//! Quickstart: simulate one Perfect Club model on both architectures.
//!
//! ```text
//! cargo run --release -p dva-examples --bin quickstart
//! ```

use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{Benchmark, Scale};

fn main() {
    // 1. Build a workload trace (the stand-in for the paper's Dixie
    //    traces of Convex-compiled Perfect Club programs).
    let program = Benchmark::Trfd.program(Scale::Default);
    let summary = program.summary();
    println!("workload: {summary}");

    // 2. Pick a memory latency and run the reference (coupled) machine.
    let latency = 50;
    let reference = RefSim::new(RefParams::with_latency(latency)).run(&program);

    // 3. Run the decoupled machine on the same trace.
    let dva = DvaSim::new(DvaConfig::dva(latency)).run(&program);

    // 4. Compare against each other and against the IDEAL resource bound.
    let ideal = ideal_bound(&program);
    println!("memory latency: {latency} cycles");
    println!(
        "IDEAL bound: {} cycles (bottleneck: {})",
        ideal.cycles(),
        ideal.bottleneck()
    );
    dva_examples::print_comparison("TRFD", &reference, &dva);
    println!(
        "stall state ( , , ): REF {} cycles vs DVA {} cycles ({:.1}x reduction)",
        reference.idle_cycles(),
        dva.idle_cycles(),
        reference.idle_cycles() as f64 / dva.idle_cycles().max(1) as f64
    );
}
