//! Compare the pluggable memory backends on one strided kernel.
//!
//! The same daxpy-style loop runs on both machines against all three
//! memory models: the paper's flat memory, a banked memory where the
//! stride determines how hard the banks fight, and a two-ported memory
//! where loads and stores stop queueing behind each other.
//!
//! ```text
//! cargo run --release -p dva-examples --bin memory_models
//! ```

use dva_sim_api::{Machine, MemoryModelKind, Sweep};
use dva_workloads::{Kernel, LoopSpec, Phase, ProgramSpec, StripOverhead};

fn main() {
    // A strided daxpy: y[4i] = a * x[4i] + y[4i]. Stride 4 over 8 banks
    // touches only two of them — the banked backend has to throttle.
    let stride = 4;
    let mut kernel = Kernel::new("strided-daxpy");
    let x = kernel.load_strided("x", stride);
    let ax = kernel.mul_scalar(x);
    let y = kernel.load_strided("y", stride);
    let s = kernel.add(ax, y);
    kernel.store_strided(s, "y", stride);
    let program = ProgramSpec {
        name: format!("daxpy-s{stride}"),
        repeat: 1,
        phases: vec![Phase::Loop(LoopSpec {
            kernel,
            strips: 64,
            vl: 64,
            software_pipeline: true,
            overhead: StripOverhead::default(),
        })],
    }
    .compile(0xDA0B5);

    let latency = 30;
    let models = [
        MemoryModelKind::Flat,
        MemoryModelKind::Banked {
            banks: 8,
            bank_busy: 8,
        },
        MemoryModelKind::MultiPort { ports: 2 },
    ];
    let results = Sweep::new()
        .machines([Machine::reference(latency), Machine::dva(latency)])
        .program(program)
        .memory_models(models)
        .run();

    println!("memory latency: {latency} cycles, stride {stride} over 8 banks\n");
    for model in models {
        let point = |label: &str| {
            results
                .of_memory(model)
                .find(|p| p.label == label)
                .expect("swept machine")
        };
        let (reference, dva) = (point("REF"), point("DVA"));
        println!("--- {model} ---");
        dva_examples::print_comparison(&model.label(), &reference.result, &dva.result);
        println!("DVA summary:\n{}\n", dva.result);
    }
    println!("The banked memory slows both machines: stride 4 leaves 6 of the");
    println!("8 banks idle, and no amount of decoupling buys bandwidth back.");
    println!("The second port helps wherever loads and stores used to queue");
    println!("behind one another on the single address bus.");
}
