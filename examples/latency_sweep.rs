//! The paper's central experiment on one program: execution time and
//! speedup as memory latency grows from 1 to 100 cycles.
//!
//! ```text
//! cargo run --release -p dva-examples --bin latency_sweep [PROGRAM]
//! ```

use dva_core::{ideal_bound, DvaConfig, DvaSim};
use dva_ref::{RefParams, RefSim};
use dva_workloads::{Benchmark, Scale};

fn main() {
    let which = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Spec77);
    let program = which.program(Scale::Default);
    let ideal = ideal_bound(&program).cycles();

    println!("{}: IDEAL bound {ideal} cycles", which.name());
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>10}",
        "L", "REF", "DVA", "speedup", "REF idle%"
    );
    for latency in [1u64, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let r = RefSim::new(RefParams::with_latency(latency)).run(&program);
        let d = DvaSim::new(DvaConfig::dva(latency)).run(&program);
        println!(
            "{latency:>4} {:>10} {:>10} {:>7.2}x {:>9.1}%",
            r.cycles,
            d.cycles,
            r.cycles as f64 / d.cycles as f64,
            100.0 * r.idle_cycles() as f64 / r.cycles as f64,
        );
    }
    println!("\nNote how the DVA column barely moves while REF climbs: the");
    println!("address processor slips ahead and hides the memory latency.");
}
