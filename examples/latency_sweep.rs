//! The paper's central experiment on one program: execution time and
//! speedup as memory latency grows from 1 to 100 cycles — one parallel
//! [`Sweep`] session.
//!
//! ```text
//! cargo run --release -p dva-examples --bin latency_sweep [PROGRAM]
//! ```

use dva_sim_api::{Machine, Sweep};
use dva_workloads::{Benchmark, Scale};

fn main() {
    let which = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Spec77);

    let results = Sweep::new()
        .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
        .benchmark(which)
        .latencies([1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
        .scale(Scale::Default)
        .run();

    let ideal = results
        .cycles("IDEAL", which, 1)
        .expect("IDEAL in the sweep");
    println!("{}: IDEAL bound {ideal} cycles", which.name());
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>10}",
        "L", "REF", "DVA", "speedup", "REF idle%"
    );
    for latency in results.latencies() {
        let r = &results.get("REF", which, latency).expect("grid").result;
        let d = &results.get("DVA", which, latency).expect("grid").result;
        println!(
            "{latency:>4} {:>10} {:>10} {:>7.2}x {:>9.1}%",
            r.cycles,
            d.cycles,
            d.speedup_over(r),
            100.0 * r.idle_cycles() as f64 / r.cycles as f64,
        );
    }
    println!("\nNote how the DVA column barely moves while REF climbs: the");
    println!("address processor slips ahead and hides the memory latency.");
}
