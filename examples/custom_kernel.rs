//! Define a custom loop kernel with the DSL and measure how decoupling
//! treats it: a well-behaved streaming loop versus a loop with a
//! reduction recurrence that forces the processors into lockstep.
//!
//! ```text
//! cargo run --release -p dva-examples --bin custom_kernel
//! ```

use dva_isa::ReduceOp;
use dva_sim_api::Machine;
use dva_workloads::{Kernel, LoopSpec, Phase, ProgramSpec, StripOverhead};

/// Builds a one-loop program around `kernel`.
fn one_loop(kernel: Kernel, strips: u32, vl: u32) -> dva_isa::Program {
    let spec = ProgramSpec {
        name: kernel.name().to_string(),
        repeat: 1,
        phases: vec![Phase::Loop(LoopSpec {
            kernel,
            strips,
            vl,
            software_pipeline: false,
            overhead: StripOverhead::default(),
        })],
    };
    spec.compile(0xC0FFEE)
}

fn main() {
    // A streaming kernel: z = (x * s + y), all accesses independent.
    let mut stream = Kernel::new("stream");
    let x = stream.load("x");
    let y = stream.load("y");
    let xs = stream.mul_scalar(x);
    let z = stream.add(xs, y);
    stream.store(z, "z");

    // The same computation, but every strip also reduces its result into
    // a scalar that feeds the next strip's addressing: a loop-carried
    // dependence through the scalar and address processors (the DYFESM
    // pattern from the paper's Section 5).
    let mut lockstep = Kernel::new("lockstep");
    let x = lockstep.load_in_place("state");
    let xs = lockstep.mul_scalar(x);
    lockstep.reduce_recurrent(ReduceOp::Sum, xs);
    lockstep.store_in_place(xs, "state");

    let latency = 80;
    println!("memory latency: {latency} cycles\n");
    for kernel in [stream, lockstep] {
        let name = kernel.name().to_string();
        let program = one_loop(kernel, 64, 64);
        let r = Machine::reference(latency).simulate(&program);
        let d = Machine::dva(latency).simulate(&program);
        dva_examples::print_comparison(&name, &r, &d);
    }
    println!("\nThe streaming loop decouples: the address processor runs ahead");
    println!("and the speedup is large. The lockstep loop cannot: every strip");
    println!("waits for a value that crosses VP -> SP -> AP, so decoupling");
    println!("buys (almost) nothing — exactly the paper's DYFESM analysis.");
}
