//! Shared helpers for the runnable examples.
//!
//! The binaries in this package exercise the public API of the DVA
//! reproduction end to end — all of them through the unified
//! [`dva_sim_api::Machine`] / [`dva_sim_api::Sweep`] front door:
//!
//! * `quickstart` — build a workload, run every machine, print a summary;
//! * `latency_sweep` — the paper's central experiment on one program;
//! * `custom_kernel` — define your own loop kernel and watch the effect
//!   of decoupling on it;
//! * `bypass_study` — spill-heavy code with and without the store→load
//!   bypass.
//!
//! Run them with `cargo run --release -p dva-examples --bin <name>`.

#![forbid(unsafe_code)]

use dva_sim_api::SimResult;

/// Prints a compact one-line comparison of the two machines.
pub fn print_comparison(label: &str, reference: &SimResult, dva: &SimResult) {
    println!(
        "{label:>10}: REF {:>9} cycles | DVA {:>9} cycles | speedup {:.2}x | bus {:.0}%/{:.0}%",
        reference.cycles,
        dva.cycles,
        dva.speedup_over(reference),
        100.0 * reference.bus_utilization,
        100.0 * dva.bus_utilization,
    );
}
