//! The sweep service end to end: start a `dva-serve` daemon on a Unix
//! socket, submit the paper's speedup-vs-latency experiment through the
//! typed [`Client`], print the table from the streamed points, then
//! submit the identical job again — the repeat is answered entirely from
//! the content-addressed result cache and simulates nothing.
//!
//! ```text
//! cargo run --release -p dva-examples --bin serve_client [PROGRAM]
//! ```

use dva_serve::{Client, ResultCache, SweepService, DEFAULT_MEMORY_CAPACITY};
use dva_sim_api::{Machine, Sweep, SweepResults};
use dva_workloads::{Benchmark, Scale};
use std::sync::Arc;

fn main() {
    let which = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Spec77);

    // A real deployment runs `dva-serve --socket PATH` as a separate
    // process; here the daemon lives on a thread so the example is
    // self-contained.
    let socket =
        std::env::temp_dir().join(format!("dva-serve-example-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let service = Arc::new(SweepService::new(ResultCache::in_memory(
        DEFAULT_MEMORY_CAPACITY,
    )));
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || dva_serve::serve_unix(service, &socket))
    };
    let mut client = loop {
        match Client::connect(&socket) {
            Ok(client) => break client,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };
    let version = client.ping().expect("daemon answers ping");
    println!(
        "connected to dva-serve (engine v{version}) at {}",
        socket.display()
    );

    let latencies = [1, 20, 40, 60, 80, 100];
    let sweep = Sweep::new()
        .machines([Machine::reference(1), Machine::dva(1), Machine::ideal()])
        .benchmark(which)
        .latencies(latencies)
        .scale(Scale::Quick)
        .threads(0); // 0 = one worker per available core

    let mut points = Vec::new();
    let summary = client
        .submit_streaming(&sweep, |_, point| points.push(point))
        .expect("job streams to completion");
    println!(
        "first job: {} points ({} simulated, {} cache hits)\n",
        summary.total, summary.simulated, summary.cache_hits
    );

    let results = SweepResults { points };
    let ideal = results.cycles("IDEAL", which, 1).expect("IDEAL in grid");
    println!("{}: IDEAL bound {ideal} cycles", which.name());
    println!("{:>4} {:>10} {:>10} {:>8}", "L", "REF", "DVA", "speedup");
    for latency in latencies {
        let r = &results.get("REF", which, latency).expect("grid").result;
        let d = &results.get("DVA", which, latency).expect("grid").result;
        println!(
            "{latency:>4} {:>10} {:>10} {:>7.2}x",
            r.cycles,
            d.cycles,
            d.speedup_over(r)
        );
    }

    // The identical job again: every point is a cache hit, and the
    // served results are byte-identical to the first run.
    let (again, summary) = client.submit(&sweep).expect("repeat job");
    assert_eq!(summary.simulated, 0, "repeat jobs simulate nothing");
    assert_eq!(summary.cache_hits, summary.total);
    assert_eq!(again, results, "cached results are byte-identical");
    println!(
        "\nrepeat job: {}/{} points from cache, 0 simulated, byte-identical",
        summary.cache_hits, summary.total
    );

    client.shutdown().expect("daemon acknowledges shutdown");
    server.join().expect("server thread").expect("clean exit");
}
