//! The store→load bypass on spill-heavy code (paper, Section 7): a loop
//! body with more live values than vector registers spills to stack
//! slots; the bypass serves the reloads straight from the store queue.
//!
//! ```text
//! cargo run --release -p dva-examples --bin bypass_study
//! ```

use dva_sim_api::{Machine, Sweep};
use dva_workloads::{Kernel, LoopSpec, Phase, ProgramSpec, StripOverhead};

fn main() {
    // Twelve arrays combined pairwise in reverse order: register pressure
    // far above the eight architectural registers, so the compiler spills.
    let mut k = Kernel::new("pressure12");
    let loads: Vec<_> = (0..12).map(|i| k.load(format!("a{i}"))).collect();
    let scaled: Vec<_> = loads.iter().map(|&l| k.mul_scalar(l)).collect();
    let mut acc = None;
    for (i, &m) in scaled.iter().enumerate() {
        let pair = k.add(m, loads[loads.len() - 1 - i]);
        acc = Some(match acc {
            None => pair,
            Some(a) => k.add(a, pair),
        });
    }
    k.store(acc.expect("nonempty"), "out");

    let spec = ProgramSpec {
        name: "bypass-study".into(),
        repeat: 1,
        phases: vec![Phase::Loop(LoopSpec {
            kernel: k,
            strips: 24,
            vl: 81,
            software_pipeline: false,
            overhead: StripOverhead::default(),
        })],
    };
    let program = spec.compile(7);
    let spill = dva_workloads::stats::spill_fraction(&program);
    println!(
        "workload: {} insts, {:.0}% of vector memory traffic is spill code\n",
        program.len(),
        100.0 * spill
    );

    // One sweep session: custom program × {DVA, BYP 4/8} × three
    // latencies, fanned out over worker threads.
    let results = Sweep::new()
        .machines([Machine::dva(1), Machine::byp(1, 4, 8)])
        .program(program)
        .latencies([1, 30, 100])
        .run();

    println!(
        "{:>4} {:>12} {:>12} {:>7} {:>10} {:>12}",
        "L", "DVA", "BYP 4/8", "gain", "bypassed", "traffic cut"
    );
    for latency in results.latencies() {
        let by_label = |label: &str| {
            &results
                .named(label, "bypass-study", latency)
                .expect("grid point")
                .result
        };
        let (dva, byp) = (by_label("DVA"), by_label("BYP 4/8"));
        println!(
            "{latency:>4} {:>12} {:>12} {:>6.1}% {:>10} {:>11.1}%",
            dva.cycles,
            byp.cycles,
            100.0 * (dva.cycles as f64 / byp.cycles as f64 - 1.0),
            byp.bypassed_loads(),
            100.0 * (1.0 - byp.traffic.ratio_to(&dva.traffic)),
        );
    }
    println!("\nEvery bypassed load skips main memory entirely: the data is");
    println!("copied from the store queue while the memory port serves other");
    println!("requests — the paper's 'illusion of two memory ports'.");
}
